package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/faults"
	"repro/internal/provenance"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// The ISSUE acceptance scenario: the oracle hierarchy is switched off
// (Options.SelfStabilize), every elected head is crashed mid-phase, and
// the links carry bursty Gilbert–Elliott loss — the same loss the
// maintenance beacons ride. Both failover variants must still complete
// on the emergent hierarchy, and the convergence machinery must have
// reported rounds-to-reconverge for the repair episodes.
func TestSelfStabHeadCrashUnderBurstyLossCompletes(t *testing.T) {
	const n, k, alpha, L, theta = 50, 5, 2, 2, 6
	T := Theorem1T(k, alpha, L)

	variants := []struct {
		name  string
		proto func() sim.Protocol
		crash []int
	}{
		// Crash rounds hit both the cold-start merge cascade (when many
		// nodes still transiently claim head) and the converged hierarchy
		// mid-phase. HeadCrashDowntime lets the victims rejoin, so the
		// clustering protocol must survive the exodus AND the returns.
		{"alg1", func() sim.Protocol { return Alg1{T: T, Failover: &Failover{Window: 3}} }, []int{T + T/2, 4 * T}},
		{"alg2", func() sim.Protocol { return Alg2{Failover: &Failover{Window: 3}} }, []int{3, 4 * T}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				cfg := adversary.HiNetConfig{
					N: n, Theta: theta, L: L, T: T,
					Reaffiliations: 2, ChurnEdges: 8,
				}
				if v.name == "alg2" {
					cfg.T = 1
				}
				assign := token.Spread(n, k, xrand.New(seed+900))
				m := sim.MustRunProtocol(adversary.NewHiNet(cfg, xrand.New(seed)), v.proto(), assign, sim.Options{
					MaxRounds:        120 * T,
					StopWhenComplete: true,
					StallWindow:      30 * T,
					SelfStabilize:    &sim.SelfStabilize{Watchdog: T},
					Faults: &sim.Faults{
						Seed:              seed,
						HeadCrashRounds:   v.crash,
						HeadCrashDowntime: 2 * T,
						Burst: &faults.GilbertElliott{
							PGoodBad: 0.05,
							PBadGood: 0.4,
							DropBad:  0.8,
						},
					},
				})
				if !m.Complete {
					t.Fatalf("seed %d: incomplete on emergent hierarchy under head crash + bursty loss: %v", seed, m)
				}
				if m.Elections == 0 {
					t.Fatalf("seed %d: no elections — hierarchy was not emergent: %v", seed, m)
				}
				// The watchdog machinery must have measured at least one
				// repair: cold-start plus the head-crash episode each leave
				// the hierarchy invalid until the protocol reconverges.
				if m.Reconvergences == 0 && m.ConvergenceReports == 0 {
					t.Fatalf("seed %d: no rounds-to-reconverge reported: %v", seed, m)
				}
				if m.MaintenanceBeacons == 0 {
					t.Fatalf("seed %d: maintenance budget unaccounted: %v", seed, m)
				}
			}
		})
	}
}

// Satellite: failover composed with head-targeted crashes AND recovery
// (the -crash-heads / -recover-after composition). After the crashed
// heads rejoin, every node must end with the full batch (token
// conservation) and the provenance DAG must stay a forest — exactly one
// in-edge per (learner, token), i.e. no duplicate first-delivery edges
// minted when a recovered node re-enters the collect/deliver cycle.
func TestFailoverHeadCrashRecoveryConservesTokensAndProvenance(t *testing.T) {
	const n, k, alpha, L, theta = 40, 4, 2, 2, 5
	T := Theorem1T(k, alpha, L)

	variants := []struct {
		name  string
		proto func() sim.Protocol
	}{
		{"alg1", func() sim.Protocol { return Alg1{T: T, Failover: &Failover{Window: 3}} }},
		{"alg2", func() sim.Protocol { return Alg2{Failover: &Failover{Window: 3}} }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := adversary.HiNetConfig{
				N: n, Theta: theta, L: L, T: T,
				Reaffiliations: 1, ChurnEdges: 4,
			}
			if v.name == "alg2" {
				cfg.T = 1
			}
			const seed = 41
			assign := token.Spread(n, k, xrand.New(seed+1))
			tracer := provenance.New(provenance.Config{Keep: true})
			proto := v.proto()
			nodes := proto.Nodes(assign)
			m := sim.MustRun(adversary.NewHiNet(cfg, xrand.New(seed)), nodes, assign, sim.Options{
				MaxRounds:        120 * T,
				StopWhenComplete: true,
				StallWindow:      30 * T,
				Tracer:           tracer,
				Faults: &sim.Faults{
					Seed:              seed,
					HeadCrashRounds:   []int{T / 2, 2 * T},
					HeadCrashDowntime: 2 * T,
				},
			})
			if !m.Complete {
				t.Fatalf("incomplete under head crash + recovery: %v", m)
			}
			if m.Recoveries == 0 {
				t.Fatalf("crash/recovery plan never fired (vacuous): %v", m)
			}
			// Token conservation: every node, including the recovered
			// heads, holds exactly the k-token batch.
			for id, node := range nodes {
				if node.Tokens().Len() != assign.K {
					t.Fatalf("node %d ends with %d/%d tokens after rejoin", id, node.Tokens().Len(), assign.K)
				}
			}
			// No duplicate provenance edges on rejoin: one in-edge per
			// (learner, token) pair, and initial holders never learn their
			// own tokens again.
			log := tracer.Log()
			if log == nil {
				t.Fatal("Keep tracer returned no log")
			}
			held := make(map[[2]int]bool)
			for tok, hs := range log.Meta.Holders {
				for _, h := range hs {
					held[[2]int{h, tok}] = true
				}
			}
			seen := make(map[[2]int]bool)
			for _, e := range log.Edges {
				key := [2]int{e.Learner, e.Token}
				if seen[key] {
					t.Fatalf("duplicate provenance edge: node %d learned token %d twice", e.Learner, e.Token)
				}
				if held[key] {
					t.Fatalf("provenance edge for initially held pair: node %d token %d", e.Learner, e.Token)
				}
				seen[key] = true
			}
			// The forest covers the run exactly: holders + first
			// deliveries account for every (node, token) pair once.
			if len(held)+len(log.Edges) != n*k {
				t.Fatalf("provenance accounting leaks: %d held + %d edges != %d pairs",
					len(held), len(log.Edges), n*k)
			}
		})
	}
}
