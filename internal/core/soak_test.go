package core

import (
	"testing"

	"repro/internal/adversary"
	hinetmodel "repro/internal/hinet"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// TestSoakRandomConfigurations is the randomized campaign: random legal
// (T, L)-HiNet configurations, each model-checked and then required to
// satisfy Theorem 1 (Algorithm 1) and Theorem 2 (Algorithm 2). It is the
// broad-spectrum safety net behind the targeted theorem tests. Use
// -short to skip.
func TestSoakRandomConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const configs = 25
	rng := xrand.New(0xC0FFEE)
	for i := 0; i < configs; i++ {
		n := 20 + rng.Intn(60)
		L := 1 + rng.Intn(3)
		// Feasibility: heads + gateways must fit with room for members.
		maxHeads := (n/2 - 1) / L
		if maxHeads < 2 {
			maxHeads = 2
		}
		theta := 2 + rng.Intn(maxHeads)
		heads := theta
		k := 1 + rng.Intn(8)
		alpha := 1 + rng.Intn(4)
		T := Theorem1T(k, alpha, L)
		cfg := adversary.HiNetConfig{
			N: n, Theta: theta, Heads: heads, L: L, T: T,
			Reaffiliations: rng.Intn(4),
			ChurnEdges:     rng.Intn(8),
		}
		phases := Theorem1Phases(theta, alpha)
		seed := rng.Uint64()

		adv := adversary.NewHiNet(cfg, xrand.New(seed))
		if err := (hinetmodel.Model{T: T, L: L}).CheckValid(adv, phases); err != nil {
			t.Fatalf("config %d (%+v): model violated: %v", i, cfg, err)
		}
		assign := token.Spread(n, k, xrand.New(seed+1))
		m1 := sim.MustRunProtocol(adv, Alg1{T: T}, assign,
			sim.Options{MaxRounds: phases * T, StopWhenComplete: true})
		if !m1.Complete {
			t.Fatalf("config %d (%+v): Theorem 1 violated: %v", i, cfg, m1)
		}

		// The same configuration at T=1 dynamics for Algorithm 2.
		adv2 := adversary.NewHiNet(adversary.HiNetConfig{
			N: n, Theta: theta, Heads: heads, L: L, T: 1,
			Reaffiliations: rng.Intn(4),
			ChurnEdges:     rng.Intn(8),
		}, xrand.New(seed+2))
		m2 := sim.MustRunProtocol(adv2, Alg2{}, assign,
			sim.Options{MaxRounds: Theorem2Rounds(n), StopWhenComplete: true})
		if !m2.Complete {
			t.Fatalf("config %d (%+v): Theorem 2 violated: %v", i, cfg, m2)
		}
	}
}

// TestSoakParallelEngineAgreement runs a slice of the campaign through the
// parallel engine and requires bit-identical results to serial execution.
func TestSoakParallelEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := xrand.New(0xBEEF)
	for i := 0; i < 8; i++ {
		n := 30 + rng.Intn(40)
		k := 2 + rng.Intn(6)
		theta := 4 + rng.Intn(6)
		T := Theorem1T(k, 2, 2)
		cfg := adversary.HiNetConfig{
			N: n, Theta: theta, L: 2, T: T,
			Reaffiliations: 2, ChurnEdges: 5,
		}
		phases := Theorem1Phases(theta, 2)
		seed := rng.Uint64()
		run := func(workers int) *sim.Metrics {
			adv := adversary.NewHiNet(cfg, xrand.New(seed))
			assign := token.Spread(n, k, xrand.New(seed+1))
			return sim.MustRunProtocol(adv, Alg1{T: T}, assign,
				sim.Options{MaxRounds: phases * T, Workers: workers})
		}
		serial, par := run(1), run(4)
		if serial.TokensSent != par.TokensSent ||
			serial.CompletionRound != par.CompletionRound ||
			serial.Messages != par.Messages {
			t.Fatalf("config %d: engines disagree: %v vs %v", i, serial, par)
		}
	}
}
