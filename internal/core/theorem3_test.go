package core

import (
	"testing"

	"repro/internal/ctvg"
	"repro/internal/graph"
	hinetmodel "repro/internal/hinet"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
)

// chainBackboneNetwork builds a static clustered network whose heads form a
// chain: heads H0..H(c-1), consecutive heads joined by one gateway (L=2),
// and one member per head. Node layout: head i = 3i, gateway after head i
// = 3i+1, member of head i = 3i+2.
func chainBackboneNetwork(c int) (ctvg.Dynamic, int) {
	n := 3 * c
	g := graph.New(n)
	h := ctvg.NewHierarchy(n)
	for i := 0; i < c; i++ {
		head := 3 * i
		member := 3*i + 2
		h.SetHead(head)
		h.SetMember(member, head)
		g.AddEdge(head, member)
		if i < c-1 {
			gw := 3*i + 1
			nextHead := 3 * (i + 1)
			g.AddEdge(head, gw)
			g.AddEdge(gw, nextHead)
			h.SetGateway(gw, head)
		} else {
			// The last gateway slot becomes a plain member so every node
			// is affiliated.
			gw := 3*i + 1
			g.AddEdge(head, gw)
			h.SetMember(gw, head)
		}
	}
	return ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h}), n
}

// TestTheorem3BoundFailsOnChainBackbones documents a REPRODUCTION FINDING:
// Theorem 3 claims that with (α·L)-interval cluster head connectivity,
// Algorithm 2 completes within ⌈θ/α⌉ + 1 rounds. On a chain backbone this
// cannot hold: Algorithm 2 moves information one hop per round along
// stable edges, so a token at one end of a θ-head chain needs Θ(θ·L)
// rounds regardless of α. The static chain network trivially satisfies
// T-interval head connectivity for every T (including α·L), machine-
// checked below, yet completion takes far longer than Theorem 3's bound —
// while Theorem 4's θ·L + 1 bound (whose proof actually tracks the
// one-hop-per-L-rounds progress) and Theorem 2's n−1 bound both hold.
func TestTheorem3BoundFailsOnChainBackbones(t *testing.T) {
	const (
		c     = 6 // heads
		alpha = 2
		L     = 2
	)
	d, n := chainBackboneNetwork(c)

	// Hypothesis check: the network has (α·L)-interval cluster head
	// connectivity with head linkage <= L (it is static, so any window
	// works) — Theorem 3's premises hold.
	m := hinetmodel.Model{T: alpha * L, L: L}
	if err := m.CheckValid(d, 3); err != nil {
		t.Fatalf("hypothesis does not hold: %v", err)
	}

	// Token at the far-end member (node 3(c-1)+2 = 17's cluster).
	assign := token.SingleSource(n, 1, 3*(c-1)+2)
	met := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{
		MaxRounds: Theorem2Rounds(n), StopWhenComplete: true,
	})
	if !met.Complete {
		t.Fatalf("Theorem 2 bound violated too: %v", met)
	}

	bound3 := Theorem3Rounds(c, alpha) // ⌈6/2⌉+1 = 4
	bound4 := Theorem4Rounds(c, L)     // 6·2+1 = 13
	if met.CompletionRound <= bound3 {
		t.Fatalf("expected the Theorem 3 bound (%d rounds) to be beaten by the chain; completed in %d — counterexample no longer demonstrates the issue",
			bound3, met.CompletionRound)
	}
	if met.CompletionRound > bound4 {
		t.Fatalf("Theorem 4 bound (%d) violated: completed in %d", bound4, met.CompletionRound)
	}
	t.Logf("chain of %d heads: Theorem 3 bound %d, Theorem 4 bound %d, actual completion %d",
		c, bound3, bound4, met.CompletionRound)
}

// TestTheorem3HoldsOnStarBackbones shows the regime where Theorem 3's
// bound IS achievable: when the backbone has constant diameter (all heads
// within one gateway of a hub), completion is quick and sits within the
// bound for reasonable α.
func TestTheorem3HoldsOnStarBackbones(t *testing.T) {
	// Hub head 0; 5 spoke heads each joined to the hub via one gateway;
	// one member per head.
	const c = 6
	n := 1 + 2*(c-1) + c // hub + (gateway+spokeHead) each + members
	g := graph.New(n)
	h := ctvg.NewHierarchy(n)
	h.SetHead(0)
	node := 1
	var heads []int
	heads = append(heads, 0)
	for i := 0; i < c-1; i++ {
		gw, spoke := node, node+1
		node += 2
		g.AddEdge(0, gw)
		g.AddEdge(gw, spoke)
		h.SetGateway(gw, 0)
		h.SetHead(spoke)
		heads = append(heads, spoke)
	}
	for i := 0; i < c; i++ {
		member := node
		node++
		g.AddEdge(heads[i], member)
		h.SetMember(member, heads[i])
	}
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})

	assign := token.SingleSource(n, 1, n-1) // a member's token
	met := sim.MustRunProtocol(d, Alg2{}, assign, sim.Options{
		MaxRounds: Theorem2Rounds(n), StopWhenComplete: true,
	})
	if !met.Complete {
		t.Fatalf("incomplete: %v", met)
	}
	// Star backbone diameter is 4 hops; with α=1, L=2 the Theorem 3
	// bound is θ+1 = 7 rounds, comfortably enough here.
	if bound := Theorem3Rounds(c, 1); met.CompletionRound > bound {
		t.Fatalf("completion %d exceeds Theorem 3 bound %d on a star backbone",
			met.CompletionRound, bound)
	}
}
