package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/ctvg"
	"repro/internal/graph"
	hinetmodel "repro/internal/hinet"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// The ablation suite measures the design choices DESIGN.md calls out:
// the member-receive filter (Promiscuous), the Remark 1 upload
// suppression (covered in alg1_test.go), and the strict-hypothesis
// sensitivity of Theorem 1.

func TestPromiscuousAbsorbsForeignRelay(t *testing.T) {
	// Same topology as TestAlg1MemberIgnoresForeignHeads: member 2 is
	// affiliated to head 0 but adjacent to head 1 which holds the token.
	// With the ablation on, node 2 must learn it.
	g := graph.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	h := ctvg.NewHierarchy(3)
	h.SetHead(0)
	h.SetHead(1)
	h.SetMember(2, 0)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	assign := token.SingleSource(3, 1, 1)
	nodes := Alg1{T: 4, Promiscuous: true}.Nodes(assign)
	sim.MustRun(d, nodes, assign, sim.Options{MaxRounds: 8})
	if !nodes[2].Tokens().Contains(0) {
		t.Fatal("promiscuous member did not overhear the foreign head")
	}
}

func TestPromiscuousNeverSlowerNeverCostlier(t *testing.T) {
	// Ablation claim: overhearing can only help completion time and never
	// changes the transmission schedule's worst case. Verified across
	// seeds on the standard HiNet point.
	k, alpha := 6, 2
	cfg := adversary.HiNetConfig{
		N: 40, Theta: 6, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 3,
		ChurnEdges:     8, // churn edges create member-to-foreign-relay adjacencies
	}
	phases := Theorem1Phases(cfg.Theta, alpha)
	for seed := uint64(0); seed < 6; seed++ {
		run := func(prom bool) *sim.Metrics {
			adv := adversary.NewHiNet(cfg, xrand.New(seed))
			assign := token.Spread(cfg.N, k, xrand.New(seed+1))
			return sim.MustRunProtocol(adv, Alg1{T: cfg.T, Promiscuous: prom}, assign,
				sim.Options{MaxRounds: phases * cfg.T})
		}
		strict := run(false)
		prom := run(true)
		if !strict.Complete || !prom.Complete {
			t.Fatalf("seed %d: incomplete (strict=%v prom=%v)", seed, strict, prom)
		}
		if prom.CompletionRound > strict.CompletionRound {
			t.Fatalf("seed %d: promiscuous slower (%d vs %d)",
				seed, prom.CompletionRound, strict.CompletionRound)
		}
	}
}

func TestTheorem1HypothesisSensitivity(t *testing.T) {
	// Failure injection: run Algorithm 1 with a phase length smaller than
	// the Theorem 1 requirement on an adversary whose hierarchy changes
	// at that faster cadence. The model checker must reject the (T_req,
	// L) claim for this network — the theorem's hypothesis machinery
	// catches the violation rather than silently mis-promising.
	k, alpha, L := 6, 2, 2
	Treq := Theorem1T(k, alpha, L) // 10
	Tshort := Treq / 2             // 5-round hierarchy stability only
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 40, Theta: 6, L: L, T: Tshort,
		Reaffiliations: 3, ChurnEdges: 5,
	}, xrand.New(3))
	// Claiming T=Treq stability over this network must fail.
	if err := (hinetmodel.Model{T: Treq, L: L}).Check(adv, 2); err == nil {
		t.Fatal("model checker accepted an under-stable network")
	}
}

func TestAlg1FailsWithoutBackbone(t *testing.T) {
	// Hard negative: two clusters with NO gateway path between the heads.
	// Algorithm 1 can never move the token across, and the model checker
	// flags the missing head connectivity.
	g := graph.New(4)
	g.AddEdge(0, 1) // head 0 + member 1
	g.AddEdge(2, 3) // head 2 + member 3
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	h.SetHead(2)
	h.SetMember(1, 0)
	h.SetMember(3, 2)
	d := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	if err := (hinetmodel.Model{T: 4, L: 2}).Check(d, 1); err == nil {
		t.Fatal("checker accepted a backbone-less network")
	}
	assign := token.SingleSource(4, 1, 1)
	met := sim.MustRunProtocol(d, Alg1{T: 4}, assign, sim.Options{MaxRounds: 40})
	if met.Complete {
		t.Fatal("dissemination completed across a permanently partitioned backbone")
	}
}

func TestUploadLowFirstStillCompletes(t *testing.T) {
	// Correctness does not depend on the upload order — only efficiency.
	k, alpha := 6, 2
	cfg := adversary.HiNetConfig{
		N: 40, Theta: 6, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 3, ChurnEdges: 5,
	}
	phases := Theorem1Phases(cfg.Theta, alpha)
	for seed := uint64(0); seed < 4; seed++ {
		adv := adversary.NewHiNet(cfg, xrand.New(seed))
		assign := token.Spread(cfg.N, k, xrand.New(seed+1))
		m := sim.MustRunProtocol(adv, Alg1{T: cfg.T, UploadLowFirst: true}, assign,
			sim.Options{MaxRounds: phases * cfg.T, StopWhenComplete: true})
		if !m.Complete {
			t.Fatalf("seed %d: low-first upload broke completion: %v", seed, m)
		}
	}
}

// wastedUploads counts upload tokens the addressed head already knew —
// the redundancy the paper's max-ID rule is designed to avoid.
func wastedUploads(t *testing.T, lowFirst bool, seed uint64) int {
	t.Helper()
	k, alpha := 8, 2
	cfg := adversary.HiNetConfig{
		N: 40, Theta: 6, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 4, ChurnEdges: 5,
	}
	phases := Theorem1Phases(cfg.Theta, alpha)
	adv := adversary.NewHiNet(cfg, xrand.New(seed))
	assign := token.Spread(cfg.N, k, xrand.New(seed+1))
	nodes := Alg1{T: cfg.T, UploadLowFirst: lowFirst}.Nodes(assign)
	wasted := 0
	obs := &sim.Observer{Sent: func(r int, m *sim.Message) {
		if m.Kind != sim.KindUpload || m.To < 0 {
			return
		}
		if m.Tokens.SubsetOf(nodes[m.To].Tokens()) {
			wasted++
		}
	}}
	sim.MustRun(adv, nodes, assign, sim.Options{MaxRounds: phases * cfg.T, Observer: obs})
	return wasted
}

func TestUploadOrderAblationMaxWastesLess(t *testing.T) {
	// Aggregated over seeds, the paper's max-first rule should waste no
	// more uploads than the min-first ablation (heads broadcast
	// min-first, so min-first uploads collide with the head's own
	// direction of progress).
	var maxWaste, minWaste int
	for seed := uint64(0); seed < 6; seed++ {
		maxWaste += wastedUploads(t, false, seed)
		minWaste += wastedUploads(t, true, seed)
	}
	t.Logf("wasted uploads: max-first=%d min-first=%d", maxWaste, minWaste)
	if maxWaste > minWaste {
		t.Fatalf("paper's max-first rule wasted more uploads (%d) than min-first (%d)",
			maxWaste, minWaste)
	}
}

func BenchmarkAblationUploadOrder(b *testing.B) {
	k, alpha := 8, 5
	cfg := adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 5, ChurnEdges: 10,
	}
	phases := Theorem1Phases(cfg.Theta, alpha)
	for _, low := range []bool{false, true} {
		name := "max-first(paper)"
		if low {
			name = "min-first(ablation)"
		}
		b.Run(name, func(b *testing.B) {
			var uploads int64
			for i := 0; i < b.N; i++ {
				adv := adversary.NewHiNet(cfg, xrand.New(uint64(i)))
				assign := token.Spread(cfg.N, k, xrand.New(uint64(i)+1))
				m := sim.MustRunProtocol(adv, Alg1{T: cfg.T, UploadLowFirst: low}, assign,
					sim.Options{MaxRounds: phases * cfg.T})
				uploads += m.TokensByKind[sim.KindUpload]
			}
			b.ReportMetric(float64(uploads)/float64(b.N), "upload-tokens")
		})
	}
}

func BenchmarkAblationMemberFilter(b *testing.B) {
	// Paper design (strict member filter) vs ablation (promiscuous).
	k, alpha := 8, 5
	cfg := adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 3, ChurnEdges: 10,
	}
	phases := Theorem1Phases(cfg.Theta, alpha)
	for _, prom := range []bool{false, true} {
		name := "strict"
		if prom {
			name = "promiscuous"
		}
		b.Run(name, func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				adv := adversary.NewHiNet(cfg, xrand.New(uint64(i)))
				assign := token.Spread(cfg.N, k, xrand.New(uint64(i)+1))
				m := sim.MustRunProtocol(adv, Alg1{T: cfg.T, Promiscuous: prom}, assign,
					sim.Options{MaxRounds: phases * cfg.T, StopWhenComplete: true})
				rounds += int64(m.CompletionRound)
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "completion-rounds")
		})
	}
}

func BenchmarkAblationStableHeads(b *testing.B) {
	// Remark 1 upload suppression vs plain Algorithm 1 under churn.
	k, alpha := 8, 5
	cfg := adversary.HiNetConfig{
		N: 100, Theta: 30, L: 2,
		T:              Theorem1T(k, alpha, 2),
		Reaffiliations: 10, ChurnEdges: 10,
	}
	phases := Theorem1Phases(cfg.Theta, alpha)
	for _, stable := range []bool{false, true} {
		name := "plain"
		if stable {
			name = "remark1"
		}
		b.Run(name, func(b *testing.B) {
			var uploads int64
			for i := 0; i < b.N; i++ {
				adv := adversary.NewHiNet(cfg, xrand.New(uint64(i)))
				assign := token.Spread(cfg.N, k, xrand.New(uint64(i)+1))
				m := sim.MustRunProtocol(adv, Alg1{T: cfg.T, StableHeads: stable}, assign,
					sim.Options{MaxRounds: phases * cfg.T})
				uploads += m.TokensByKind[sim.KindUpload]
			}
			b.ReportMetric(float64(uploads)/float64(b.N), "upload-tokens")
		})
	}
}
