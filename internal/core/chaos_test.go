package core

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/adversary"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/xrand"
)

// The chaos soak throws randomized fault plans — i.i.d. loss, bursty loss,
// duplication, crash-stop, crash-recovery and head-targeted crashes — at
// the resilient protocols on churning (T, L)-HiNets. It does not demand
// completion (a random plan may legitimately partition the network
// forever); it demands that every run TERMINATES with a coherent verdict:
// complete, stalled with a diagnostic, or out of budget. Every run sets a
// StallWindow, so the soak can never hang even when the plan kills the
// whole population.
//
// `make chaos` runs a larger campaign via CHAOS_RUNS / CHAOS_SEED; plain
// `go test` keeps the default small and -short skips it entirely.

func chaosEnv(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func TestChaosRandomFaultPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	runs := chaosEnv("CHAOS_RUNS", 8)
	seed := uint64(chaosEnv("CHAOS_SEED", 0xC4405))
	rng := xrand.New(seed)
	t.Logf("chaos: %d runs, seed %#x", runs, seed)

	for i := 0; i < runs; i++ {
		n := 20 + rng.Intn(50)
		k := 1 + rng.Intn(5)
		L := 1 + rng.Intn(2)
		maxHeads := (n/2 - 1) / L
		if maxHeads < 2 {
			maxHeads = 2
		}
		theta := 2 + rng.Intn(maxHeads)
		alpha := 1 + rng.Intn(3)
		T := Theorem1T(k, alpha, L)
		budget := 6 * Theorem1Phases(theta, alpha) * T

		plan := &sim.Faults{Seed: rng.Uint64()}
		if rng.Prob(0.7) {
			plan.DropProb = rng.Float64() * 0.2
		}
		if rng.Prob(0.4) {
			plan.Burst = &faults.GilbertElliott{
				PGoodBad: 0.01 + rng.Float64()*0.1,
				PBadGood: 0.1 + rng.Float64()*0.5,
				DropBad:  0.5 + rng.Float64()*0.5,
			}
		}
		if rng.Prob(0.3) {
			plan.DupProb = rng.Float64() * 0.1
		}
		crashes := rng.Intn(1 + n/5)
		for c := 0; c < crashes; c++ {
			v := rng.Intn(n)
			if plan.CrashAt == nil {
				plan.CrashAt = map[int]int{}
			}
			plan.CrashAt[v] = rng.Intn(budget / 2)
			if rng.Bool() {
				if plan.RecoverAfter == nil {
					plan.RecoverAfter = map[int]int{}
				}
				plan.RecoverAfter[v] = 1 + rng.Intn(3*T)
			}
		}
		if rng.Prob(0.5) {
			plan.HeadCrashRounds = []int{rng.Intn(budget / 2)}
			plan.HeadCrashDowntime = rng.Intn(4 * T)
		}

		cfg := adversary.HiNetConfig{
			N: n, Theta: theta, L: L, T: T,
			Reaffiliations: rng.Intn(4),
			ChurnEdges:     rng.Intn(8),
		}
		advSeed := rng.Uint64()
		assign := token.Spread(n, k, xrand.New(advSeed+1))
		var proto sim.Protocol
		if rng.Bool() {
			proto = Alg1{T: T, Failover: &Failover{Window: 1 + rng.Intn(2*T)}}
		} else {
			cfg.T = 1
			proto = Alg2{Failover: &Failover{Window: 1 + rng.Intn(2*T)}}
		}
		opts := sim.Options{
			MaxRounds:        budget,
			StopWhenComplete: true,
			StallWindow:      4 * T,
			Workers:          1 + rng.Intn(4),
			Faults:           plan,
		}
		// Half the runs swap the oracle hierarchy for the self-stabilizing
		// clustering protocol, so the soak also shakes the emergent-repair
		// path under every fault combination above.
		if rng.Prob(0.5) {
			opts.SelfStabilize = &sim.SelfStabilize{
				OrphanAfter: 1 + rng.Intn(3),
				Watchdog:    T + rng.Intn(4*T),
			}
		}

		met, err := sim.RunProtocol(adversary.NewHiNet(cfg, xrand.New(advSeed)), proto, assign, opts)
		if err != nil {
			t.Fatalf("run %d (%+v, plan %+v): %v", i, cfg, plan, err)
		}
		// Every run must end in exactly one coherent state.
		switch {
		case met.Complete:
			if met.Stall != nil {
				t.Fatalf("run %d: complete yet stalled: %v", i, met)
			}
		case met.Stall != nil:
			if met.Rounds > budget {
				t.Fatalf("run %d: stall fired after the budget: %v", i, met)
			}
		case met.Rounds != budget:
			t.Fatalf("run %d: ended at round %d with no verdict (budget %d): %v",
				i, met.Rounds, budget, met)
		}
		if met.Drops < 0 || met.Dups < 0 || met.Recoveries < 0 {
			t.Fatalf("run %d: negative fault counters: %v", i, met)
		}
	}
}

// TestChaosArrivals soaks steady-state mode: randomized arrival processes
// (steady, bursty, hotspot, token-capped) layered on randomized fault plans.
// Like the fault soak it does not demand completion, only termination with a
// coherent verdict — and on top of that, token conservation: batch plus
// injected equals collected plus outstanding, with the queue bounded by its
// own recorded peak.
func TestChaosArrivals(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	runs := chaosEnv("CHAOS_RUNS", 8)
	seed := uint64(chaosEnv("CHAOS_SEED", 0xC4406))
	rng := xrand.New(seed)
	t.Logf("chaos arrivals: %d runs, seed %#x", runs, seed)

	for i := 0; i < runs; i++ {
		n := 20 + rng.Intn(50)
		k := 1 + rng.Intn(5)
		L := 1 + rng.Intn(2)
		maxHeads := (n/2 - 1) / L
		if maxHeads < 2 {
			maxHeads = 2
		}
		theta := 2 + rng.Intn(maxHeads)
		alpha := 1 + rng.Intn(3)
		T := Theorem1T(k, alpha, L)
		budget := 8 * Theorem1Phases(theta, alpha) * T

		arr := &sim.Arrivals{
			Rate: 0.1 + rng.Float64()*2,
			Seed: rng.Uint64(),
			Stop: 1 + rng.Intn(budget/2),
		}
		if rng.Prob(0.3) {
			arr.OnRounds = 1 + rng.Intn(4)
			arr.OffRounds = 1 + rng.Intn(8)
		}
		if rng.Prob(0.3) {
			arr.Hotspot = true
			arr.HotspotNode = rng.Intn(n)
		}
		if rng.Prob(0.3) {
			arr.MaxTokens = 1 + rng.Intn(3*k)
		}

		plan := &sim.Faults{Seed: rng.Uint64()}
		if rng.Prob(0.5) {
			plan.DropProb = rng.Float64() * 0.15
		}
		crashes := rng.Intn(1 + n/8)
		for c := 0; c < crashes; c++ {
			v := rng.Intn(n)
			if plan.CrashAt == nil {
				plan.CrashAt = map[int]int{}
			}
			plan.CrashAt[v] = rng.Intn(budget / 2)
			if rng.Bool() {
				if plan.RecoverAfter == nil {
					plan.RecoverAfter = map[int]int{}
				}
				plan.RecoverAfter[v] = 1 + rng.Intn(3*T)
			}
		}

		cfg := adversary.HiNetConfig{
			N: n, Theta: theta, L: L, T: T,
			Reaffiliations: rng.Intn(4),
			ChurnEdges:     rng.Intn(8),
		}
		advSeed := rng.Uint64()
		assign := token.Spread(n, k, xrand.New(advSeed+1))
		var proto sim.Protocol
		if rng.Bool() {
			proto = Alg1{T: T, Failover: &Failover{Window: 1 + rng.Intn(2*T)}}
		} else {
			cfg.T = 1
			proto = Alg2{Failover: &Failover{Window: 1 + rng.Intn(2*T)}}
		}
		opts := sim.Options{
			MaxRounds:        budget,
			StopWhenComplete: true,
			StallWindow:      4 * T,
			Workers:          1 + rng.Intn(4),
			Faults:           plan,
			Arrivals:         arr,
		}
		if rng.Prob(0.5) {
			opts.SelfStabilize = &sim.SelfStabilize{
				OrphanAfter: 1 + rng.Intn(3),
				Watchdog:    T + rng.Intn(4*T),
			}
		}

		met, err := sim.RunProtocol(adversary.NewHiNet(cfg, xrand.New(advSeed)), proto, assign, opts)
		if err != nil {
			t.Fatalf("run %d (%+v, arr %+v): %v", i, cfg, arr, err)
		}
		switch {
		case met.Complete:
			if met.Stall != nil {
				t.Fatalf("run %d: complete yet stalled: %v", i, met)
			}
			if met.OutstandingTokens != 0 {
				t.Fatalf("run %d: complete with %d outstanding: %v", i, met.OutstandingTokens, met)
			}
		case met.Stall != nil:
			if met.Rounds > budget {
				t.Fatalf("run %d: stall fired after the budget: %v", i, met)
			}
		case met.Rounds != budget:
			t.Fatalf("run %d: ended at round %d with no verdict (budget %d): %v",
				i, met.Rounds, budget, met)
		}
		// Token conservation under GC and slot reuse.
		if int64(k)+met.TokensInjected != met.TokensCollected+int64(met.OutstandingTokens) {
			t.Fatalf("run %d: token accounting leaks: batch %d + injected %d != collected %d + outstanding %d",
				i, k, met.TokensInjected, met.TokensCollected, met.OutstandingTokens)
		}
		if met.OutstandingTokens > met.PeakOutstanding || met.PeakOutstanding < k {
			t.Fatalf("run %d: queue outside its peak: %v", i, met)
		}
		if arr.MaxTokens > 0 && met.TokensInjected > int64(arr.MaxTokens) {
			t.Fatalf("run %d: injected %d past cap %d", i, met.TokensInjected, arr.MaxTokens)
		}
	}
}
