package provenance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/ctvg"
	"repro/internal/sim"
)

// Edge is one first delivery: node Learner acquired Token in round Round
// from the message described by the remaining fields. The edges of a run,
// grouped by token, form that token's dissemination DAG (in fact a tree:
// exactly one in-edge per (learner, token) pair).
type Edge struct {
	// Round is the engine round whose deliver phase taught the token.
	Round int
	// Token is the token learned.
	Token int
	// Learner is the node that first acquired the token.
	Learner int
	// Teacher is the sender of the message credited with the delivery, or
	// NoTeacher when no single message can be credited (a network-coded
	// decode that combined several packets).
	Teacher int
	// Kind is the credited message's kind.
	Kind sim.MsgKind
	// TeacherRole is the teacher's cluster role in the delivery round
	// (ctvg.Unaffiliated when Teacher is NoTeacher).
	TeacherRole ctvg.Role
	// Cluster is the learner's cluster head at delivery time, or
	// ctvg.NoCluster.
	Cluster int
}

// NoTeacher marks an edge whose delivery cannot be credited to a single
// message (multi-packet network-coded decodes).
const NoTeacher = -1

// RoundRec is the per-round provenance accounting record.
type RoundRec struct {
	Round int
	// First is the number of first deliveries ((node, token) pairs newly
	// acquired) this round; Redundant is the number of cost-bearing
	// messages heard by a live node that taught it nothing new; and
	// RedundantTokens counts the individual token copies those and all
	// other non-coded deliveries carried beyond first use.
	First           int
	Redundant       int
	RedundantTokens int64
	// HeadMin is the minimum token count over live cluster heads at the
	// round barrier (-1 when no head is live); Heads is the live head
	// count.
	HeadMin int
	Heads   int
}

// MaintRec is one round of self-stabilizing clustering maintenance
// (sim.Options.SelfStabilize): the repair events and beacon budget the
// emergent hierarchy spent this round, as handed to the tracer through
// sim.MaintenanceTracer. Emitted only in self-stabilizing runs.
type MaintRec struct {
	Round int
	// Elections / Adoptions / HeadMerges count this round's repair events;
	// Beacons is the round's maintenance message budget.
	Elections  int
	Adoptions  int
	HeadMerges int
	Beacons    int
	// Valid reports whether the emergent hierarchy was valid this round;
	// Reconverged, when positive, is the invalid-streak length this round
	// ended (rounds-to-reconverge).
	Valid       bool
	Reconverged int
}

// ArriveRec is one token injection in an arrival-mode run: the token (by
// slot and generation sequence number) entered the system at node Node in
// round Round — the root of that generation's dissemination DAG.
type ArriveRec struct {
	Round int
	Node  int
	Token int
	Seq   int64
}

// CollectRec is one token garbage collection: the generation occupying
// slot Token (sequence Seq, injected in round Born) was held by every
// counted node at round Round's barrier and left the system after
// Latency = Round - Born rounds.
type CollectRec struct {
	Round   int
	Token   int
	Seq     int64
	Born    int
	Latency int
}

// SLAViolation is one per-token deadline miss (Config.SLA): the generation
// took Latency > SLA rounds from arrival to collection — or, when
// Outstanding is set, was still uncollected that long after arrival when
// the run ended.
type SLAViolation struct {
	Round       int
	Token       int
	Seq         int64
	Born        int
	Latency     int
	Outstanding bool
}

// String formats the deadline miss on one line.
func (s SLAViolation) String() string {
	state := "collected"
	if s.Outstanding {
		state = "still outstanding"
	}
	return fmt.Sprintf("sla violation: token %d (seq %d, born round %d) %s after %d rounds",
		s.Token, s.Seq, s.Born, state, s.Latency)
}

// PaceViolation is one structured warning from the online pace checker:
// at the end of 1-based phase Phase (round Round), the weakest live head
// held HeadMin tokens but Theorem 1's schedule required Required.
type PaceViolation struct {
	Round    int
	Phase    int
	HeadMin  int
	Required int
}

// String formats the warning on one line.
func (p PaceViolation) String() string {
	return fmt.Sprintf("pace violation at round %d (end of phase %d): weakest live head holds %d tokens, Theorem 1 pace requires %d",
		p.Round, p.Phase, p.HeadMin, p.Required)
}

// Meta is the run header of a provenance stream.
type Meta struct {
	N int
	K int
	// PhaseLen/Phases/Alpha/Theta mirror the Budget when pace checking was
	// configured (all zero otherwise).
	PhaseLen int
	Phases   int
	Alpha    int
	Theta    int
	// Holders[t] lists the nodes initially holding token t, ascending —
	// the roots of token t's dissemination DAG.
	Holders [][]int
}

// SenderRedundancy is one row of the redundancy hotspot account.
type SenderRedundancy struct {
	Node  int
	Count int64
}

// Summary is the run-level account emitted once at Flush.
type Summary struct {
	First           int64
	Redundant       int64
	RedundantTokens int64
	RedundantByKind [sim.NumKinds]int64
	PaceViolations  int
	// Arrivals / Collected / SLAViolations carry the arrival-mode account:
	// tokens injected, tokens garbage-collected, and per-token deadline
	// misses. All zero in batch runs.
	Arrivals      int64
	Collected     int64
	SLAViolations int
	// Elections / Adoptions / HeadMerges / MaintenanceBeacons total the
	// self-stabilizing protocol's repair work and message budget over the
	// run — the maintenance cost the ledger attributes alongside the
	// dissemination traffic it rides with. All zero when
	// sim.Options.SelfStabilize is off.
	Elections          int64
	Adoptions          int64
	HeadMerges         int64
	MaintenanceBeacons int64
	// BySender lists per-sender redundant-message counts, descending by
	// count (ascending node ID among ties); senders with zero redundancy
	// are omitted.
	BySender []SenderRedundancy
}

// Log is a fully parsed (or Keep-retained) provenance stream.
type Log struct {
	Meta        Meta
	Edges       []Edge
	Rounds      []RoundRec
	Maint       []MaintRec
	Pace        []PaceViolation
	Arrivals    []ArriveRec
	Collections []CollectRec
	SLA         []SLAViolation
	Summary     *Summary
}

var kindNames = [sim.NumKinds]string{"broadcast", "upload", "relay", "coded"}
var roleNames = [ctvg.Unaffiliated + 1]string{"member", "head", "gateway", "unaffiliated"}

func kindFromName(s string) (sim.MsgKind, error) {
	for i, n := range kindNames {
		if n == s {
			return sim.MsgKind(i), nil
		}
	}
	return 0, fmt.Errorf("provenance: unknown message kind %q", s)
}

func roleFromName(s string) (ctvg.Role, error) {
	for i, n := range roleNames {
		if n == s {
			return ctvg.Role(i), nil
		}
	}
	return 0, fmt.Errorf("provenance: unknown role %q", s)
}

// appendIntList renders [1,2,3].
func appendIntList(b []byte, xs []int) []byte {
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return append(b, ']')
}

// The Append* functions below render each record type as one JSON object
// (no trailing newline) with a fixed key order, so equal records encode to
// equal bytes — the property the serial-vs-parallel determinism tests
// assert on. Every record carries a "t" discriminator as its first key.

// AppendMetaJSON appends the run header record.
func AppendMetaJSON(b []byte, m *Meta) []byte {
	b = append(b, `{"t":"meta","n":`...)
	b = strconv.AppendInt(b, int64(m.N), 10)
	b = append(b, `,"k":`...)
	b = strconv.AppendInt(b, int64(m.K), 10)
	b = append(b, `,"phase_len":`...)
	b = strconv.AppendInt(b, int64(m.PhaseLen), 10)
	b = append(b, `,"phases":`...)
	b = strconv.AppendInt(b, int64(m.Phases), 10)
	b = append(b, `,"alpha":`...)
	b = strconv.AppendInt(b, int64(m.Alpha), 10)
	b = append(b, `,"theta":`...)
	b = strconv.AppendInt(b, int64(m.Theta), 10)
	b = append(b, `,"holders":[`...)
	for i, hs := range m.Holders {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendIntList(b, hs)
	}
	return append(b, ']', '}')
}

// AppendEdgeJSON appends one first-delivery edge record.
func AppendEdgeJSON(b []byte, e *Edge) []byte {
	b = append(b, `{"t":"edge","round":`...)
	b = strconv.AppendInt(b, int64(e.Round), 10)
	b = append(b, `,"token":`...)
	b = strconv.AppendInt(b, int64(e.Token), 10)
	b = append(b, `,"learner":`...)
	b = strconv.AppendInt(b, int64(e.Learner), 10)
	b = append(b, `,"teacher":`...)
	b = strconv.AppendInt(b, int64(e.Teacher), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, kindNames[e.Kind]...)
	b = append(b, `","role":"`...)
	b = append(b, roleNames[e.TeacherRole]...)
	b = append(b, `","cluster":`...)
	b = strconv.AppendInt(b, int64(e.Cluster), 10)
	return append(b, '}')
}

// AppendRoundJSON appends one per-round accounting record.
func AppendRoundJSON(b []byte, r *RoundRec) []byte {
	b = append(b, `{"t":"round","round":`...)
	b = strconv.AppendInt(b, int64(r.Round), 10)
	b = append(b, `,"first":`...)
	b = strconv.AppendInt(b, int64(r.First), 10)
	b = append(b, `,"redundant":`...)
	b = strconv.AppendInt(b, int64(r.Redundant), 10)
	b = append(b, `,"redundant_tokens":`...)
	b = strconv.AppendInt(b, r.RedundantTokens, 10)
	b = append(b, `,"head_min":`...)
	b = strconv.AppendInt(b, int64(r.HeadMin), 10)
	b = append(b, `,"heads":`...)
	b = strconv.AppendInt(b, int64(r.Heads), 10)
	return append(b, '}')
}

// AppendMaintJSON appends one clustering-maintenance record.
func AppendMaintJSON(b []byte, m *MaintRec) []byte {
	b = append(b, `{"t":"maint","round":`...)
	b = strconv.AppendInt(b, int64(m.Round), 10)
	b = append(b, `,"elections":`...)
	b = strconv.AppendInt(b, int64(m.Elections), 10)
	b = append(b, `,"adoptions":`...)
	b = strconv.AppendInt(b, int64(m.Adoptions), 10)
	b = append(b, `,"head_merges":`...)
	b = strconv.AppendInt(b, int64(m.HeadMerges), 10)
	b = append(b, `,"beacons":`...)
	b = strconv.AppendInt(b, int64(m.Beacons), 10)
	b = append(b, `,"valid":`...)
	b = strconv.AppendBool(b, m.Valid)
	b = append(b, `,"reconverged":`...)
	b = strconv.AppendInt(b, int64(m.Reconverged), 10)
	return append(b, '}')
}

// AppendPaceJSON appends one pace-violation warning record.
func AppendPaceJSON(b []byte, p *PaceViolation) []byte {
	b = append(b, `{"t":"pace","round":`...)
	b = strconv.AppendInt(b, int64(p.Round), 10)
	b = append(b, `,"phase":`...)
	b = strconv.AppendInt(b, int64(p.Phase), 10)
	b = append(b, `,"head_min":`...)
	b = strconv.AppendInt(b, int64(p.HeadMin), 10)
	b = append(b, `,"required":`...)
	b = strconv.AppendInt(b, int64(p.Required), 10)
	return append(b, '}')
}

// AppendArriveJSON appends one token-injection record.
func AppendArriveJSON(b []byte, a *ArriveRec) []byte {
	b = append(b, `{"t":"arrive","round":`...)
	b = strconv.AppendInt(b, int64(a.Round), 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(a.Node), 10)
	b = append(b, `,"token":`...)
	b = strconv.AppendInt(b, int64(a.Token), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, a.Seq, 10)
	return append(b, '}')
}

// AppendCollectJSON appends one garbage-collection record.
func AppendCollectJSON(b []byte, c *CollectRec) []byte {
	b = append(b, `{"t":"collect","round":`...)
	b = strconv.AppendInt(b, int64(c.Round), 10)
	b = append(b, `,"token":`...)
	b = strconv.AppendInt(b, int64(c.Token), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, c.Seq, 10)
	b = append(b, `,"born":`...)
	b = strconv.AppendInt(b, int64(c.Born), 10)
	b = append(b, `,"latency":`...)
	b = strconv.AppendInt(b, int64(c.Latency), 10)
	return append(b, '}')
}

// AppendSLAJSON appends one deadline-miss record.
func AppendSLAJSON(b []byte, s *SLAViolation) []byte {
	b = append(b, `{"t":"sla","round":`...)
	b = strconv.AppendInt(b, int64(s.Round), 10)
	b = append(b, `,"token":`...)
	b = strconv.AppendInt(b, int64(s.Token), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, s.Seq, 10)
	b = append(b, `,"born":`...)
	b = strconv.AppendInt(b, int64(s.Born), 10)
	b = append(b, `,"latency":`...)
	b = strconv.AppendInt(b, int64(s.Latency), 10)
	b = append(b, `,"outstanding":`...)
	b = strconv.AppendBool(b, s.Outstanding)
	return append(b, '}')
}

// AppendSummaryJSON appends the run-level summary record.
func AppendSummaryJSON(b []byte, s *Summary) []byte {
	b = append(b, `{"t":"summary","first":`...)
	b = strconv.AppendInt(b, s.First, 10)
	b = append(b, `,"redundant":`...)
	b = strconv.AppendInt(b, s.Redundant, 10)
	b = append(b, `,"redundant_tokens":`...)
	b = strconv.AppendInt(b, s.RedundantTokens, 10)
	b = append(b, `,"redundant_kind":{`...)
	for i, n := range kindNames {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, n...)
		b = append(b, '"', ':')
		b = strconv.AppendInt(b, s.RedundantByKind[i], 10)
	}
	b = append(b, `},"pace_violations":`...)
	b = strconv.AppendInt(b, int64(s.PaceViolations), 10)
	b = append(b, `,"arrivals":`...)
	b = strconv.AppendInt(b, s.Arrivals, 10)
	b = append(b, `,"collected":`...)
	b = strconv.AppendInt(b, s.Collected, 10)
	b = append(b, `,"sla_violations":`...)
	b = strconv.AppendInt(b, int64(s.SLAViolations), 10)
	b = append(b, `,"elections":`...)
	b = strconv.AppendInt(b, s.Elections, 10)
	b = append(b, `,"adoptions":`...)
	b = strconv.AppendInt(b, s.Adoptions, 10)
	b = append(b, `,"head_merges":`...)
	b = strconv.AppendInt(b, s.HeadMerges, 10)
	b = append(b, `,"maintenance_beacons":`...)
	b = strconv.AppendInt(b, s.MaintenanceBeacons, 10)
	b = append(b, `,"by_sender":[`...)
	for i, sr := range s.BySender {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(sr.Node), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, sr.Count, 10)
		b = append(b, ']')
	}
	return append(b, ']', '}')
}

// recordJSON is the union wire schema for decoding: one struct holds every
// field any record type uses, discriminated by T.
type recordJSON struct {
	T string `json:"t"`

	N        int     `json:"n"`
	K        int     `json:"k"`
	PhaseLen int     `json:"phase_len"`
	Phases   int     `json:"phases"`
	Alpha    int     `json:"alpha"`
	Theta    int     `json:"theta"`
	Holders  [][]int `json:"holders"`

	Round   int    `json:"round"`
	Token   int    `json:"token"`
	Learner int    `json:"learner"`
	Teacher int    `json:"teacher"`
	Kind    string `json:"kind"`
	Role    string `json:"role"`
	Cluster int    `json:"cluster"`

	First           int64 `json:"first"`
	Redundant       int64 `json:"redundant"`
	RedundantTokens int64 `json:"redundant_tokens"`
	HeadMin         int   `json:"head_min"`
	Heads           int   `json:"heads"`

	Phase    int `json:"phase"`
	Required int `json:"required"`

	Node        int   `json:"node"`
	Seq         int64 `json:"seq"`
	Born        int   `json:"born"`
	Latency     int   `json:"latency"`
	Outstanding bool  `json:"outstanding"`

	Elections   int64 `json:"elections"`
	Adoptions   int64 `json:"adoptions"`
	HeadMerges  int64 `json:"head_merges"`
	Beacons     int64 `json:"beacons"`
	Valid       bool  `json:"valid"`
	Reconverged int   `json:"reconverged"`
	MaintBeac   int64 `json:"maintenance_beacons"`

	RedundantKind  map[string]int64 `json:"redundant_kind"`
	PaceViolations int              `json:"pace_violations"`
	Arrivals       int64            `json:"arrivals"`
	Collected      int64            `json:"collected"`
	SLAViolationsN int              `json:"sla_violations"`
	BySender       [][2]int64       `json:"by_sender"`
}

// ParseLog decodes a provenance JSONL stream written by a Tracer.
func ParseLog(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	log := &Log{}
	line := 0
	for dec.More() {
		line++
		var rec recordJSON
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("provenance: record %d: %w", line, err)
		}
		switch rec.T {
		case "meta":
			log.Meta = Meta{
				N: rec.N, K: rec.K,
				PhaseLen: rec.PhaseLen, Phases: rec.Phases,
				Alpha: rec.Alpha, Theta: rec.Theta,
				Holders: rec.Holders,
			}
		case "edge":
			kind, err := kindFromName(rec.Kind)
			if err != nil {
				return nil, fmt.Errorf("provenance: record %d: %w", line, err)
			}
			role, err := roleFromName(rec.Role)
			if err != nil {
				return nil, fmt.Errorf("provenance: record %d: %w", line, err)
			}
			log.Edges = append(log.Edges, Edge{
				Round: rec.Round, Token: rec.Token,
				Learner: rec.Learner, Teacher: rec.Teacher,
				Kind: kind, TeacherRole: role, Cluster: rec.Cluster,
			})
		case "round":
			log.Rounds = append(log.Rounds, RoundRec{
				Round: rec.Round, First: int(rec.First),
				Redundant:       int(rec.Redundant),
				RedundantTokens: rec.RedundantTokens,
				HeadMin:         rec.HeadMin, Heads: rec.Heads,
			})
		case "maint":
			log.Maint = append(log.Maint, MaintRec{
				Round:     rec.Round,
				Elections: int(rec.Elections), Adoptions: int(rec.Adoptions),
				HeadMerges: int(rec.HeadMerges), Beacons: int(rec.Beacons),
				Valid: rec.Valid, Reconverged: rec.Reconverged,
			})
		case "pace":
			log.Pace = append(log.Pace, PaceViolation{
				Round: rec.Round, Phase: rec.Phase,
				HeadMin: rec.HeadMin, Required: rec.Required,
			})
		case "arrive":
			log.Arrivals = append(log.Arrivals, ArriveRec{
				Round: rec.Round, Node: rec.Node, Token: rec.Token, Seq: rec.Seq,
			})
		case "collect":
			log.Collections = append(log.Collections, CollectRec{
				Round: rec.Round, Token: rec.Token, Seq: rec.Seq,
				Born: rec.Born, Latency: rec.Latency,
			})
		case "sla":
			log.SLA = append(log.SLA, SLAViolation{
				Round: rec.Round, Token: rec.Token, Seq: rec.Seq,
				Born: rec.Born, Latency: rec.Latency, Outstanding: rec.Outstanding,
			})
		case "summary":
			s := &Summary{
				First:              rec.First,
				Redundant:          rec.Redundant,
				RedundantTokens:    rec.RedundantTokens,
				PaceViolations:     rec.PaceViolations,
				Arrivals:           rec.Arrivals,
				Collected:          rec.Collected,
				SLAViolations:      rec.SLAViolationsN,
				Elections:          rec.Elections,
				Adoptions:          rec.Adoptions,
				HeadMerges:         rec.HeadMerges,
				MaintenanceBeacons: rec.MaintBeac,
			}
			for i, n := range kindNames {
				s.RedundantByKind[i] = rec.RedundantKind[n]
			}
			for _, pair := range rec.BySender {
				s.BySender = append(s.BySender, SenderRedundancy{Node: int(pair[0]), Count: pair[1]})
			}
			log.Summary = s
		default:
			return nil, fmt.Errorf("provenance: record %d: unknown type %q", line, rec.T)
		}
	}
	return log, nil
}
