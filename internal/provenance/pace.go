package provenance

// Budget carries the Theorem 1 parameters the online pace checker needs to
// judge a run mid-flight. Algorithm 1 runs in M = ⌈θ/α⌉ + 1 phases of
// T = k + α·L rounds; the bound's proof paces the hierarchy by the token
// floor it maintains at cluster heads: every full phase, member uploads and
// gateway exchange must add at least α tokens to each live head's set
// until the heads saturate at k.
type Budget struct {
	// PhaseLen is the phase length T in rounds.
	PhaseLen int
	// Phases is the theorem's phase budget M; pace is only checked for the
	// first Phases phase boundaries (0 means every boundary).
	Phases int
	// Alpha is the progress coefficient α: tokens each head must gain per
	// full phase to meet the bound.
	Alpha int
	// Theta is the cluster-size bound θ (recorded for the ledger; the pace
	// floor itself depends only on Alpha).
	Theta int
}

// RequiredHeadMin returns the Theorem 1 pace floor after `phase` complete
// phases (1-based): the minimum token count every live cluster head must
// hold for the run to still be on schedule, min(k, α·(phase−1)).
//
// The first phase is grace: heads begin with only their own initial tokens
// and spend phase 1 gathering member uploads, so the floor starts binding
// at the second phase boundary. From there each full phase must have added
// α tokens to every live head (the proof's per-phase progress guarantee),
// capped at k once a head can know everything.
func (b *Budget) RequiredHeadMin(k, phase int) int {
	if b == nil || b.Alpha <= 0 || phase <= 1 {
		return 0
	}
	req := b.Alpha * (phase - 1)
	if req > k {
		req = k
	}
	return req
}
