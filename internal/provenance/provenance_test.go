package provenance

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// Theorem-parameterised test network: k=5, α=2, L=2 → T = k+αL = 9,
// M = ⌈θ/α⌉+1 = 4 phases.
const (
	tN     = 30
	tK     = 5
	tAlpha = 2
	tL     = 2
	tTheta = 6
	tT     = 9 // core.Theorem1T(tK, tAlpha, tL)
)

// recordedNet freezes a HiNet adversary so repeated runs (serial vs
// parallel, traced vs untraced) see identical snapshots.
func recordedNet(seed uint64, rounds int) (*ctvg.Trace, *token.Assignment) {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: tN, Theta: tTheta, L: tL, T: tT,
		Reaffiliations: 2, HeadChurn: 1, Heads: 4, ChurnEdges: 4,
	}, xrand.New(seed))
	tr := ctvg.Record(adv, rounds)
	assign := token.Spread(tN, tK, xrand.New(seed+100))
	return tr, assign
}

func testBudget() *Budget {
	return &Budget{PhaseLen: tT, Phases: core.Theorem1Phases(tTheta, tAlpha), Alpha: tAlpha, Theta: tTheta}
}

// tracedRun executes one Alg1 run with a tracer attached and returns the
// emitted stream, the tracer and the metrics.
func tracedRun(t *testing.T, seed uint64, workers int, proto sim.Protocol, faults *sim.Faults, keep bool) ([]byte, *Tracer, *sim.Metrics) {
	t.Helper()
	tr, assign := recordedNet(seed, 72)
	var sink bytes.Buffer
	tracer := New(Config{Sink: &sink, Keep: keep, Budget: testBudget()})
	met, err := sim.RunProtocol(tr, proto, assign, sim.Options{
		MaxRounds: 72, StopWhenComplete: true,
		Tracer: tracer, Faults: faults, Workers: workers,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return sink.Bytes(), tracer, met
}

// TestTracerSerialParallelByteIdentical is the determinism acceptance
// gate: serial and 4-worker runs must emit byte-identical provenance
// streams, fault-free and under crash-recovery + duplication faults, for
// the plain and failover protocols.
func TestTracerSerialParallelByteIdentical(t *testing.T) {
	faulty := &sim.Faults{
		Seed:    42,
		DupProb: 0.05,
		CrashAt: map[int]int{3: 8, 11: 20, 17: 5},
		RecoverAfter: map[int]int{
			3:  10,
			17: 25,
		},
	}
	cases := []struct {
		name   string
		proto  sim.Protocol
		faults *sim.Faults
	}{
		{"alg1 fault-free", core.Alg1{T: tT}, nil},
		{"alg1-failover faulty", core.Alg1{T: tT, Failover: &core.Failover{Window: 3}}, faulty},
		{"alg2 faulty", core.Alg2{}, faulty},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, st, smet := tracedRun(t, 1, 1, tc.proto, tc.faults, false)
			par, pt, pmet := tracedRun(t, 1, 4, tc.proto, tc.faults, false)
			if !bytes.Equal(serial, par) {
				t.Fatalf("serial and 4-worker provenance streams differ (%d vs %d bytes)", len(serial), len(par))
			}
			if smet.FirstDeliveries != pmet.FirstDeliveries || smet.RedundantDeliveries != pmet.RedundantDeliveries {
				t.Fatalf("metrics differ: serial first=%d red=%d, parallel first=%d red=%d",
					smet.FirstDeliveries, smet.RedundantDeliveries, pmet.FirstDeliveries, pmet.RedundantDeliveries)
			}
			if st.PaceViolations() != pt.PaceViolations() {
				t.Fatalf("pace violations differ: %d vs %d", st.PaceViolations(), pt.PaceViolations())
			}
			if len(serial) == 0 {
				t.Fatal("empty provenance stream")
			}
		})
	}
}

// TestTracerDAGInvariants replays the edge stream and checks the causal
// invariants: exactly one edge per acquired (node, token) pair, no edge
// for initially held pairs, and every teacher acquired the token in a
// strictly earlier round (or held it initially).
func TestTracerDAGInvariants(t *testing.T) {
	_, tracer, met := tracedRun(t, 2, 1, core.Alg1{T: tT}, nil, true)
	log := tracer.Log()
	if log == nil {
		t.Fatal("Keep log missing")
	}
	if int64(len(log.Edges)) != met.FirstDeliveries {
		t.Fatalf("%d edges, metrics counted %d first deliveries", len(log.Edges), met.FirstDeliveries)
	}

	// acquired[pair] = round the pair was first delivered; initial holders
	// are seeded at round -1.
	acquired := map[int64]int{}
	for tok, hs := range log.Meta.Holders {
		for _, v := range hs {
			acquired[pairKey(v, tok)] = -1
		}
	}
	initial := len(acquired)
	lastRound := -1
	for i, e := range log.Edges {
		if e.Round < lastRound {
			t.Fatalf("edge %d out of round order: %d after %d", i, e.Round, lastRound)
		}
		lastRound = e.Round
		if _, dup := acquired[pairKey(e.Learner, e.Token)]; dup {
			t.Fatalf("edge %d: (node %d, token %d) delivered twice", i, e.Learner, e.Token)
		}
		if e.Teacher != NoTeacher {
			tr, ok := acquired[pairKey(e.Teacher, e.Token)]
			if !ok {
				t.Fatalf("edge %d: teacher %d never held token %d", i, e.Teacher, e.Token)
			}
			if tr >= e.Round {
				t.Fatalf("edge %d: teacher %d acquired token %d at round %d, taught at round %d", i, e.Teacher, e.Token, tr, e.Round)
			}
		}
		acquired[pairKey(e.Learner, e.Token)] = e.Round
	}
	if !met.Complete {
		t.Fatalf("run incomplete: %v", met)
	}
	if got, want := len(log.Edges), tN*tK-initial; got != want {
		t.Fatalf("complete run recorded %d edges, want n·k−initial = %d", got, want)
	}
}

// TestCrashRecoveryNoDoubleCount: a recovered node rejoins with its token
// set intact, so re-hearing pre-crash tokens must never mint new edges.
func TestCrashRecoveryNoDoubleCount(t *testing.T) {
	faults := &sim.Faults{
		Seed:         7,
		CrashAt:      map[int]int{2: 2, 9: 4, 21: 6},
		RecoverAfter: map[int]int{2: 5, 9: 6, 21: 8},
	}
	_, tracer, met := tracedRun(t, 3, 2, core.Alg1{T: tT, Failover: &core.Failover{Window: 3}}, faults, true)
	log := tracer.Log()
	seen := map[int64]bool{}
	for i, e := range log.Edges {
		k := pairKey(e.Learner, e.Token)
		if seen[k] {
			t.Fatalf("edge %d: (node %d, token %d) counted twice across crash-recovery", i, e.Learner, e.Token)
		}
		seen[k] = true
	}
	if met.FirstDeliveries > int64(tN*tK) {
		t.Fatalf("first deliveries %d exceed n·k = %d", met.FirstDeliveries, tN*tK)
	}
	if met.Recoveries == 0 {
		t.Fatal("fault plan injected no recoveries; test is vacuous")
	}
}

// TestRedundancyAccounting: duplicated deliveries teach nothing, so a
// duplicating run must record strictly more redundant messages than the
// same run without faults, and the summary must reconcile with the
// per-round records.
func TestRedundancyAccounting(t *testing.T) {
	_, clean, _ := tracedRun(t, 4, 1, core.Alg1{T: tT}, nil, true)
	_, dupped, met := tracedRun(t, 4, 1, core.Alg1{T: tT}, &sim.Faults{Seed: 5, DupProb: 0.3}, true)
	cs, ds := clean.Log().Summary, dupped.Log().Summary
	if ds.Redundant <= cs.Redundant {
		t.Fatalf("duplication did not increase redundancy: %d (dup) vs %d (clean)", ds.Redundant, cs.Redundant)
	}
	if met.RedundantDeliveries != ds.Redundant {
		t.Fatalf("metrics redundant %d != summary %d", met.RedundantDeliveries, ds.Redundant)
	}
	var first, red int64
	for _, r := range dupped.Log().Rounds {
		first += int64(r.First)
		red += int64(r.Redundant)
	}
	if first != ds.First || red != ds.Redundant {
		t.Fatalf("round records sum to first=%d red=%d, summary says first=%d red=%d", first, red, ds.First, ds.Redundant)
	}
	var byKind int64
	for _, c := range ds.RedundantByKind {
		byKind += c
	}
	if byKind != ds.Redundant {
		t.Fatalf("per-kind redundancy sums to %d, total is %d", byKind, ds.Redundant)
	}
	var bySender int64
	for _, sr := range ds.BySender {
		bySender += sr.Count
		if sr.Count <= 0 {
			t.Fatalf("BySender contains non-positive count: %+v", sr)
		}
	}
	if bySender != ds.Redundant {
		t.Fatalf("per-sender redundancy sums to %d, total is %d", bySender, ds.Redundant)
	}
	for i := 1; i < len(ds.BySender); i++ {
		a, b := ds.BySender[i-1], ds.BySender[i]
		if a.Count < b.Count || (a.Count == b.Count && a.Node > b.Node) {
			t.Fatalf("BySender not sorted: %+v before %+v", a, b)
		}
	}
}

// heartbeat pollution guard: a fault-free failover run's heartbeats are
// zero-cost and must not show up in the redundancy account as messages.
func TestHeartbeatsNotRedundant(t *testing.T) {
	_, plain, _ := tracedRun(t, 6, 1, core.Alg1{T: tT}, nil, true)
	_, fo, _ := tracedRun(t, 6, 1, core.Alg1{T: tT, Failover: &core.Failover{Window: 3}}, nil, true)
	ps, fs := plain.Log().Summary, fo.Log().Summary
	// Failover changes payload timing slightly (phase-boundary upload
	// retransmissions), so totals need not be equal — but the heartbeat
	// flood (every head, every round) must not appear as redundancy, which
	// would dwarf the plain run's count.
	if fs.Redundant > 3*ps.Redundant+tN {
		t.Fatalf("failover redundancy %d suggests zero-cost heartbeats are being counted (plain: %d)", fs.Redundant, ps.Redundant)
	}
}

// isolatedHeadNet builds a 4-node static network: head 0 with members 1
// and 2, and head 3 isolated with no edges and no members. Token t is
// initially held by node t, so head 3 can never learn anything and must
// fall behind any positive pace floor.
func isolatedHeadNet(rounds int) (*ctvg.Trace, *token.Assignment) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	h.SetHead(3)
	snaps := make([]*graph.Graph, rounds)
	hiers := make([]*ctvg.Hierarchy, rounds)
	for i := range snaps {
		snaps[i], hiers[i] = g, h
	}
	assign := &token.Assignment{K: 4, Initial: []*bitset.Set{
		bitset.FromSlice([]int{0}),
		bitset.FromSlice([]int{1}),
		bitset.FromSlice([]int{2}),
		bitset.FromSlice([]int{3}),
	}}
	return ctvg.NewTrace(tvg.NewTrace(snaps), hiers), assign
}

// TestPaceCheckerFires: on a constructed under-budget network the checker
// must warn at the first phase boundary whose floor the isolated head
// misses, bump the registry counter and invoke OnPace.
func TestPaceCheckerFires(t *testing.T) {
	tr, assign := isolatedHeadNet(6)
	reg := obs.NewRegistry()
	var fired []PaceViolation
	tracer := New(Config{
		Keep:     true,
		Budget:   &Budget{PhaseLen: 2, Phases: 3, Alpha: 2, Theta: 2},
		Registry: reg,
		OnPace:   func(v PaceViolation) { fired = append(fired, v) },
	})
	if _, err := sim.RunProtocol(tr, core.Alg1{T: 2}, assign, sim.Options{
		MaxRounds: 6, Tracer: tracer,
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if tracer.PaceViolations() == 0 {
		t.Fatal("pace checker stayed silent on an under-budget run")
	}
	if len(fired) != tracer.PaceViolations() {
		t.Fatalf("OnPace fired %d times, tracer counted %d", len(fired), tracer.PaceViolations())
	}
	first := fired[0]
	// Phase 1 is grace; the isolated head (1 token) first misses the
	// α·(p−1) floor at the end of phase 2, round 3.
	if first.Phase != 2 || first.Round != 3 || first.HeadMin != 1 || first.Required != 2 {
		t.Fatalf("first violation %+v, want phase 2 at round 3 with head_min 1 < required 2", first)
	}
	if got := reg.Counter("sim_pace_violations_total", "").Value(); got != int64(tracer.PaceViolations()) {
		t.Fatalf("registry counter %d, tracer counted %d", got, tracer.PaceViolations())
	}
	if got := tracer.Log().Pace; len(got) != len(fired) || !reflect.DeepEqual(got[0], first) {
		t.Fatalf("log pace records %+v do not match OnPace %+v", got, fired)
	}
}

// TestPaceCheckerSilentOnConformanceRuns: fault-free Algorithm 1 runs on
// theorem-parameterised networks must never trip the checker — across
// seeds and worker counts.
func TestPaceCheckerSilentOnConformanceRuns(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, workers := range []int{1, 4} {
			_, tracer, met := tracedRun(t, seed, workers, core.Alg1{T: tT}, nil, false)
			if n := tracer.PaceViolations(); n != 0 {
				t.Fatalf("seed %d workers %d: pace checker fired %d times on a fault-free run (metrics: %v)", seed, workers, n, met)
			}
		}
	}
}

// TestParseLogRoundTrip: the JSONL stream parses back into exactly the
// structures the tracer retained.
func TestParseLogRoundTrip(t *testing.T) {
	stream, tracer, _ := tracedRun(t, 5, 1, core.Alg1{T: tT}, &sim.Faults{Seed: 9, DupProb: 0.1}, true)
	kept := tracer.Log()
	parsed, err := ParseLog(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(parsed.Meta, kept.Meta) {
		t.Fatalf("meta mismatch:\nparsed %+v\nkept   %+v", parsed.Meta, kept.Meta)
	}
	if !reflect.DeepEqual(parsed.Edges, kept.Edges) {
		t.Fatalf("edges mismatch (%d vs %d)", len(parsed.Edges), len(kept.Edges))
	}
	if !reflect.DeepEqual(parsed.Rounds, kept.Rounds) {
		t.Fatalf("rounds mismatch (%d vs %d)", len(parsed.Rounds), len(kept.Rounds))
	}
	if !reflect.DeepEqual(parsed.Pace, kept.Pace) {
		t.Fatalf("pace mismatch: %+v vs %+v", parsed.Pace, kept.Pace)
	}
	if !reflect.DeepEqual(parsed.Summary, kept.Summary) {
		t.Fatalf("summary mismatch:\nparsed %+v\nkept   %+v", parsed.Summary, kept.Summary)
	}
}

// TestLineageAndCriticalPath checks the ancestry walk on a real run: every
// chain is chronological, rooted at an initial holder, and the per-token
// critical path dominates every sampled per-node path.
func TestLineageAndCriticalPath(t *testing.T) {
	_, tracer, met := tracedRun(t, 7, 1, core.Alg1{T: tT}, nil, true)
	if !met.Complete {
		t.Fatalf("run incomplete: %v", met)
	}
	log := tracer.Log()
	for node := 0; node < tN; node++ {
		for tok := 0; tok < tK; tok++ {
			chain, ok := log.Lineage(node, tok)
			if !ok {
				t.Fatalf("complete run has no lineage for (node %d, token %d)", node, tok)
			}
			if len(chain) == 0 {
				if !log.initiallyHolds(node, tok) {
					t.Fatalf("(node %d, token %d): empty chain but not an initial holder", node, tok)
				}
				continue
			}
			if chain[len(chain)-1].Learner != node {
				t.Fatalf("(node %d, token %d): chain ends at node %d", node, tok, chain[len(chain)-1].Learner)
			}
			root := chain[0]
			if root.Teacher != NoTeacher && !log.initiallyHolds(root.Teacher, tok) {
				t.Fatalf("(node %d, token %d): chain root teacher %d is not an initial holder", node, tok, root.Teacher)
			}
			for i := 1; i < len(chain); i++ {
				if chain[i].Round <= chain[i-1].Round {
					t.Fatalf("(node %d, token %d): chain not strictly chronological at hop %d", node, tok, i)
				}
				if chain[i].Teacher != chain[i-1].Learner {
					t.Fatalf("(node %d, token %d): chain disconnected at hop %d", node, tok, i)
				}
			}
		}
	}
	for tok := 0; tok < tK; tok++ {
		crit, ok := log.TokenCritical(tok)
		if !ok {
			t.Fatalf("no critical path for token %d", tok)
		}
		if crit.Depth != len(crit.Edges) || crit.Rounds != crit.Edges[len(crit.Edges)-1].Round+1 {
			t.Fatalf("token %d: inconsistent path account %+v", tok, crit)
		}
		if crit.Queued != crit.Rounds-crit.Depth {
			t.Fatalf("token %d: queued %d != rounds %d − depth %d", tok, crit.Queued, crit.Rounds, crit.Depth)
		}
		hops := 0
		for _, c := range crit.RoleHops {
			hops += c
		}
		if hops != crit.Depth {
			t.Fatalf("token %d: role hops sum to %d, depth is %d", tok, hops, crit.Depth)
		}
		for node := 0; node < tN; node += 7 {
			if p, ok := log.CriticalPath(node, tok); ok && p.Rounds > crit.Rounds {
				t.Fatalf("token %d: node %d path (%d rounds) exceeds critical path (%d rounds)", tok, node, p.Rounds, crit.Rounds)
			}
		}
	}
}

// TestDepths: the forward-pass depth of each edge equals its lineage
// length.
func TestDepths(t *testing.T) {
	_, tracer, _ := tracedRun(t, 8, 1, core.Alg1{T: tT}, nil, true)
	log := tracer.Log()
	depths := log.Depths()
	if len(depths) != len(log.Edges) {
		t.Fatalf("%d depths for %d edges", len(depths), len(log.Edges))
	}
	for i, e := range log.Edges {
		chain, ok := log.Lineage(e.Learner, e.Token)
		if !ok {
			t.Fatalf("edge %d has no lineage", i)
		}
		if depths[i] != len(chain) {
			t.Fatalf("edge %d: depth %d, lineage length %d", i, depths[i], len(chain))
		}
	}
}

// TestLedger: phase rows tile the run, reconcile with the edge totals and
// judge a fault-free run on pace.
func TestLedger(t *testing.T) {
	_, tracer, _ := tracedRun(t, 9, 1, core.Alg1{T: tT}, nil, true)
	log := tracer.Log()
	rows := log.Ledger(nil) // budget reconstructed from the meta line
	if len(rows) == 0 {
		t.Fatal("empty ledger")
	}
	var first int64
	for i, row := range rows {
		if row.Phase != i+1 {
			t.Fatalf("row %d has phase %d", i, row.Phase)
		}
		first += int64(row.First)
		if !row.OnPace {
			t.Fatalf("fault-free run judged behind pace at phase %d: %+v", row.Phase, row)
		}
	}
	if first != log.Summary.First {
		t.Fatalf("ledger first-delivery total %d != summary %d", first, log.Summary.First)
	}
}

// TestDisabledTracerUntouched: a nil Options.Tracer leaves Metrics'
// delivery counters at zero (the zero-overhead contract is benchmarked in
// the repository root's BenchmarkHiNet1k alloc guard).
func TestDisabledTracerUntouched(t *testing.T) {
	tr, assign := recordedNet(1, 72)
	met, err := sim.RunProtocol(tr, core.Alg1{T: tT}, assign, sim.Options{
		MaxRounds: 72, StopWhenComplete: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if met.FirstDeliveries != 0 || met.RedundantDeliveries != 0 {
		t.Fatalf("untraced run accumulated delivery metrics: %+v", met)
	}
}
