package provenance

// Arrival-mode provenance: arrive/collect records with generation-aware
// identity, the per-token SLA monitor, known-set pruning on GC (so reused
// slots are re-traced), stream ordering, parse round-trips, and
// byte-identity under the parallel engine.

import (
	"bytes"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
)

// arrivalRun floods a path network under Poisson arrivals with a tracer
// attached.
func arrivalRun(t *testing.T, n, workers, sla int, arr sim.Arrivals, reg *obs.Registry) ([]byte, *Tracer, *sim.Metrics) {
	t.Helper()
	d := sim.NewFlat(tvg.Static{G: graph.Path(n)})
	var sink bytes.Buffer
	tracer := New(Config{Sink: &sink, Keep: true, SLA: sla, Registry: reg})
	met, err := sim.RunProtocol(d, baseline.Flood{}, token.SingleSource(n, 2, 0), sim.Options{
		MaxRounds:        300,
		StopWhenComplete: true,
		StallWindow:      50,
		Tracer:           tracer,
		Workers:          workers,
		Arrivals:         &arr,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return sink.Bytes(), tracer, met
}

func TestTracerArrivalRecords(t *testing.T) {
	raw, tracer, met := arrivalRun(t, 6, 1, 0, sim.Arrivals{Rate: 1, Seed: 7, Stop: 60}, nil)
	if !met.Complete || met.TokensInjected == 0 {
		t.Fatalf("want a completed run with arrivals, got %v", met)
	}
	log := tracer.Log()
	if int64(len(log.Arrivals)) != met.TokensInjected {
		t.Errorf("%d arrive records, metrics injected %d", len(log.Arrivals), met.TokensInjected)
	}
	if int64(len(log.Collections)) != met.TokensCollected {
		t.Errorf("%d collect records, metrics collected %d", len(log.Collections), met.TokensCollected)
	}
	if log.Summary.Arrivals != met.TokensInjected || log.Summary.Collected != met.TokensCollected {
		t.Errorf("summary arrivals/collected = %d/%d, want %d/%d",
			log.Summary.Arrivals, log.Summary.Collected, met.TokensInjected, met.TokensCollected)
	}

	// Every generation is collected exactly once with consistent identity,
	// and its first-delivery edges fall inside its lifetime.
	byCollect := map[int64]CollectRec{}
	for _, c := range log.Collections {
		if _, dup := byCollect[c.Seq]; dup {
			t.Errorf("sequence %d collected twice", c.Seq)
		}
		if c.Latency != c.Round-c.Born {
			t.Errorf("seq %d: latency %d != round %d - born %d", c.Seq, c.Latency, c.Round, c.Born)
		}
		byCollect[c.Seq] = c
	}
	for _, a := range log.Arrivals {
		c, ok := byCollect[a.Seq]
		if !ok {
			t.Errorf("arrival seq %d never collected in a drained run", a.Seq)
			continue
		}
		if c.Token != a.Token || c.Born != a.Round {
			t.Errorf("seq %d identity mismatch: arrive (slot %d, round %d) vs collect (slot %d, born %d)",
				a.Seq, a.Token, a.Round, c.Token, c.Born)
		}
	}

	// Slot reuse must be re-traced: for a slot hosting several generations,
	// edges must exist after the first collection of that slot (the pruning
	// regression — without DifferenceWith(gc) on the known sets, second
	// generations diff as already-known and leave no edges).
	collectsBySlot := map[int][]CollectRec{}
	for _, c := range log.Collections {
		collectsBySlot[c.Token] = append(collectsBySlot[c.Token], c)
	}
	reusedTraced := false
	for slot, cs := range collectsBySlot {
		if len(cs) < 2 {
			continue
		}
		firstGC := cs[0].Round
		for _, e := range log.Edges {
			if e.Token == slot && e.Round > firstGC {
				reusedTraced = true
				break
			}
		}
		_ = slot
		if reusedTraced {
			break
		}
	}
	if !reusedTraced {
		t.Error("no first-delivery edges for any second-generation slot — known sets not pruned on GC")
	}

	// The stream parses back with the arrival records intact and in causal
	// order (arrive in round r precedes any collect of round >= r for the
	// same sequence).
	parsed, err := ParseLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(parsed.Arrivals) != len(log.Arrivals) || len(parsed.Collections) != len(log.Collections) {
		t.Fatalf("parse dropped records: %d/%d arrivals, %d/%d collections",
			len(parsed.Arrivals), len(log.Arrivals), len(parsed.Collections), len(log.Collections))
	}
	if parsed.Summary.Arrivals != log.Summary.Arrivals || parsed.Summary.Collected != log.Summary.Collected {
		t.Error("summary arrival fields did not round-trip")
	}
}

func TestTracerSLAMonitor(t *testing.T) {
	// Diameter-7 path: every token needs >= 3 rounds, so SLA 1 must flag
	// every collection; a generous SLA flags nothing.
	reg := obs.NewRegistry()
	var cbs []SLAViolation
	d := sim.NewFlat(tvg.Static{G: graph.Path(8)})
	var sink bytes.Buffer
	tracer := New(Config{
		Sink: &sink, Keep: true, SLA: 1, Registry: reg,
		OnSLA: func(v SLAViolation) { cbs = append(cbs, v) },
	})
	met, err := sim.RunProtocol(d, baseline.Flood{}, token.SingleSource(8, 2, 0), sim.Options{
		MaxRounds: 300, StopWhenComplete: true, StallWindow: 50,
		Tracer:   tracer,
		Arrivals: &sim.Arrivals{Rate: 1, Seed: 7, Stop: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	log := tracer.Log()
	if int64(len(log.SLA)) != met.TokensCollected {
		t.Errorf("%d sla records, want one per collected token (%d) at SLA=1",
			len(log.SLA), met.TokensCollected)
	}
	if len(cbs) != len(log.SLA) {
		t.Errorf("OnSLA fired %d times, log has %d", len(cbs), len(log.SLA))
	}
	if got := reg.Counter("sim_sla_violations_total", "").Value(); got != int64(len(log.SLA)) {
		t.Errorf("sim_sla_violations_total = %d, want %d", got, len(log.SLA))
	}
	for _, v := range log.SLA {
		if v.Outstanding {
			t.Errorf("drained run reported outstanding violation: %v", v)
		}
		if v.Latency <= 1 {
			t.Errorf("violation with latency %d <= SLA", v.Latency)
		}
	}

	// Generous deadline: silent.
	_, quiet, _ := arrivalRun(t, 8, 1, 250, sim.Arrivals{Rate: 1, Seed: 7, Stop: 40}, nil)
	if quiet.SLAViolationCount() != 0 {
		t.Errorf("SLA=250 run reported %d violations", quiet.SLAViolationCount())
	}
}

// TestTracerSLAOutstandingAtEnd pins the Flush-time aging path: a run cut
// off with overdue tokens still in flight must report them as outstanding
// misses.
func TestTracerSLAOutstandingAtEnd(t *testing.T) {
	// Nodes 0-1 connected, node 2 isolated: nothing is ever collected.
	g := graph.New(3)
	g.AddEdge(0, 1)
	d := sim.NewFlat(tvg.Static{G: g})
	tracer := New(Config{Keep: true, SLA: 5})
	met, err := sim.RunProtocol(d, baseline.Flood{}, token.SingleSource(3, 1, 0), sim.Options{
		MaxRounds: 40, StallWindow: 20,
		Tracer:   tracer,
		Arrivals: &sim.Arrivals{Rate: 4, Seed: 1, Stop: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if met.TokensCollected != 0 {
		t.Fatalf("collected %d with an isolated node", met.TokensCollected)
	}
	log := tracer.Log()
	want := 1 + int(met.TokensInjected) // initial batch + every arrival, all overdue
	if len(log.SLA) != want {
		t.Fatalf("%d outstanding sla records, want %d", len(log.SLA), want)
	}
	for _, v := range log.SLA {
		if !v.Outstanding {
			t.Errorf("uncollected token reported as collected miss: %v", v)
		}
	}
	if log.Summary.SLAViolations != want {
		t.Errorf("summary SLAViolations = %d, want %d", log.Summary.SLAViolations, want)
	}
}

// TestTracerArrivalByteIdentical extends the provenance determinism
// contract to arrival mode: the stream is byte-identical under any worker
// count, and arrive records survive RoundEnd's buffering (the discarded-
// buffer regression).
func TestTracerArrivalByteIdentical(t *testing.T) {
	arr := sim.Arrivals{Rate: 1.5, Seed: 21, Stop: 80}
	ref, refTracer, refMet := arrivalRun(t, 40, 1, 8, arr, nil)
	if refMet.TokensInjected == 0 {
		t.Fatal("reference run injected nothing")
	}
	if got := int64(len(refTracer.Log().Arrivals)); got != refMet.TokensInjected {
		t.Fatalf("arrive records lost: %d in log, %d injected", got, refMet.TokensInjected)
	}
	if !bytes.Contains(ref, []byte(`{"t":"arrive"`)) || !bytes.Contains(ref, []byte(`{"t":"collect"`)) {
		t.Fatal("stream is missing arrive/collect records")
	}
	for _, workers := range []int{2, 4} {
		got, _, _ := arrivalRun(t, 40, workers, 8, arr, nil)
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: arrival-mode provenance diverges from serial (%d vs %d bytes)",
				workers, len(got), len(ref))
		}
	}
}
