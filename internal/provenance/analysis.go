package provenance

import (
	"repro/internal/ctvg"
	"repro/internal/sim"
)

// pairKey packs a (node, token) pair into a map key.
func pairKey(node, token int) int64 {
	return int64(node)<<32 | int64(uint32(token))
}

// edgeIndex maps each (learner, token) pair to its edge position. Every
// pair has at most one edge (first delivery), so the map is total over
// log.Edges.
func (l *Log) edgeIndex() map[int64]int {
	idx := make(map[int64]int, len(l.Edges))
	for i, e := range l.Edges {
		idx[pairKey(e.Learner, e.Token)] = i
	}
	return idx
}

// initiallyHolds reports whether node held token before round 0.
func (l *Log) initiallyHolds(node, token int) bool {
	if token < 0 || token >= len(l.Meta.Holders) {
		return false
	}
	for _, v := range l.Meta.Holders[token] {
		if v == node {
			return true
		}
	}
	return false
}

// Lineage returns the first-delivery chain that brought token to node, in
// chronological order (the hop out of an initial holder first). The chain
// is empty when node held the token initially; the second result is false
// when node never acquired it (or the log does not cover it). A chain
// ends early at a NoTeacher hop: network-coded decodes with no single
// attributable source have no further ancestry.
func (l *Log) Lineage(node, token int) ([]Edge, bool) {
	idx := l.edgeIndex()
	var chain []Edge
	cur := node
	for {
		if i, ok := idx[pairKey(cur, token)]; ok {
			chain = append(chain, l.Edges[i])
			t := l.Edges[i].Teacher
			if t == NoTeacher {
				break
			}
			cur = t
			continue
		}
		if !l.initiallyHolds(cur, token) {
			return nil, false
		}
		break
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, true
}

// Path is a critical-path account of one (node, token) acquisition.
type Path struct {
	Node, Token int
	// Edges is the lineage, chronological.
	Edges []Edge
	// Depth is the hop count (len(Edges)).
	Depth int
	// Rounds is the end-to-end latency in rounds: the token existed from
	// round 0 and arrived at the end of round Edges[last].Round, so
	// Rounds = last hop round + 1 (0 for an initial holder).
	Rounds int
	// Queued is Rounds − Depth: every hop spends exactly one round in
	// flight, so the remainder is rounds the token sat waiting in some
	// holder's set (typically queued behind other tokens at a head).
	Queued int
	// KindHops / RoleHops break the hop count down by credited message
	// kind and teacher role — the member→head→gateway→head→member
	// composition of the route.
	KindHops [sim.NumKinds]int
	RoleHops [ctvg.Unaffiliated + 1]int
}

// path builds the Path account from a lineage chain.
func path(node, token int, chain []Edge) Path {
	p := Path{Node: node, Token: token, Edges: chain, Depth: len(chain)}
	if len(chain) > 0 {
		p.Rounds = chain[len(chain)-1].Round + 1
		p.Queued = p.Rounds - p.Depth
		for _, e := range chain {
			p.KindHops[e.Kind]++
			p.RoleHops[e.TeacherRole]++
		}
	}
	return p
}

// CriticalPath returns the Path account for one (node, token) pair; false
// when the node never acquired the token.
func (l *Log) CriticalPath(node, token int) (Path, bool) {
	chain, ok := l.Lineage(node, token)
	if !ok {
		return Path{}, false
	}
	return path(node, token, chain), true
}

// TokenCritical returns the critical path of one token: the lineage of its
// slowest acquisition (the last first-delivery in stream order, which is
// the latest-round one). False when the log has no edge for the token —
// either nobody needed it or the log is empty.
func (l *Log) TokenCritical(token int) (Path, bool) {
	last := -1
	for i, e := range l.Edges {
		if e.Token == token {
			last = i
		}
	}
	if last < 0 {
		return Path{}, false
	}
	e := l.Edges[last]
	chain, ok := l.Lineage(e.Learner, token)
	if !ok {
		return Path{}, false
	}
	return path(e.Learner, token, chain), true
}

// AllCritical returns one critical path per token that has at least one
// edge, ascending by token ID.
func (l *Log) AllCritical() []Path {
	var out []Path
	for tok := 0; tok < l.Meta.K; tok++ {
		if p, ok := l.TokenCritical(tok); ok {
			out = append(out, p)
		}
	}
	return out
}

// Depths returns the hop depth of every edge, aligned with log.Edges: an
// initial holder is depth 0 and each first delivery is its teacher's
// depth plus one. Edges arrive in round order and a teacher always
// acquired the token in a strictly earlier round (sends precede
// deliveries within a round), so a single forward pass suffices. A
// NoTeacher hop counts its unknown source as depth 0.
func (l *Log) Depths() []int {
	depth := make(map[int64]int, len(l.Edges))
	out := make([]int, len(l.Edges))
	for i, e := range l.Edges {
		d := 1
		if e.Teacher != NoTeacher {
			if td, ok := depth[pairKey(e.Teacher, e.Token)]; ok {
				d = td + 1
			}
		}
		depth[pairKey(e.Learner, e.Token)] = d
		out[i] = d
	}
	return out
}

// LedgerRow is one phase of the run-level budget ledger: observed progress
// against the Theorem 1 schedule.
type LedgerRow struct {
	// Phase is 1-based; EndRound is the phase's last executed round.
	Phase    int
	EndRound int
	// Required is the pace floor at the end of this phase; HeadMin and
	// Heads are the observed weakest-live-head token count and live head
	// count at that round (-1/0 when the log has no such round record).
	Required int
	HeadMin  int
	Heads    int
	// First / Redundant total the phase's deliveries.
	First     int
	Redundant int
	// OnPace reports HeadMin ≥ Required (vacuously true with no heads).
	OnPace bool
}

// Ledger folds the per-round records into per-phase rows judged against
// the budget. A nil budget falls back to the parameters recorded in the
// log's meta line; the result is nil when neither defines a phase length.
// Trailing partial phases are included (judged against the floor of the
// last full phase boundary they did not reach — i.e. not judged: OnPace
// is computed only for complete phases).
func (l *Log) Ledger(b *Budget) []LedgerRow {
	if b == nil {
		if l.Meta.PhaseLen <= 0 {
			return nil
		}
		b = &Budget{
			PhaseLen: l.Meta.PhaseLen, Phases: l.Meta.Phases,
			Alpha: l.Meta.Alpha, Theta: l.Meta.Theta,
		}
	}
	if b.PhaseLen <= 0 {
		return nil
	}
	var out []LedgerRow
	var row *LedgerRow
	for i := range l.Rounds {
		rec := &l.Rounds[i]
		phase := rec.Round/b.PhaseLen + 1
		if row == nil || row.Phase != phase {
			out = append(out, LedgerRow{Phase: phase, HeadMin: -1})
			row = &out[len(out)-1]
		}
		row.EndRound = rec.Round
		row.HeadMin = rec.HeadMin
		row.Heads = rec.Heads
		row.First += rec.First
		row.Redundant += rec.Redundant
	}
	for i := range out {
		row := &out[i]
		complete := (row.EndRound+1)%b.PhaseLen == 0
		if complete {
			row.Required = b.RequiredHeadMin(l.Meta.K, row.Phase)
			row.OnPace = row.Heads == 0 || row.HeadMin >= row.Required
		} else {
			row.OnPace = true
		}
	}
	return out
}
