// Package provenance records per-token dissemination DAGs: one edge per
// first delivery of a token to a node, plus a redundancy account of the
// deliveries that taught nothing.
//
// The obs layer answers how much traffic each round carries; this package
// answers why dissemination finished when it did. Theorem 1's bound
// T ≥ k + α·L, M ≥ ⌈θ/α⌉ + 1 is an argument about causal token flow
// through the head hierarchy, so the tracer captures exactly that flow:
// which message first taught which node which token, through which role,
// at which round. On top of the DAG sit per-token critical paths, a
// run-level budget ledger against the theorem predictions, and an online
// pace checker that warns the moment a run falls behind the schedule the
// theorem requires — catching doomed runs mid-flight instead of at the
// stall watchdog.
//
// Design constraints mirror the obs layer: the tracer is opt-in (a nil
// sim.Options.Tracer costs one pointer test per hook site and zero
// allocations), sharded so the engine's parallel deliver phase never
// contends on it, and deterministic — a Workers > 1 run emits a stream
// byte-identical to the serial engine's on the same inputs.
package provenance

import (
	"io"
	"sort"

	"repro/internal/bitset"
	"repro/internal/ctvg"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config configures a Tracer.
type Config struct {
	// Sink, when non-nil, receives the provenance JSONL stream (meta line,
	// then edge/round/pace records in round order, then one summary line
	// at Flush). Writes are buffered inside the tracer; call Flush.
	Sink io.Writer
	// Keep retains the full Log in memory for Log().
	Keep bool
	// Budget, when non-nil, arms the online pace checker: at the end of
	// every phase the weakest live head's token count is compared against
	// Theorem 1's schedule, and falling short emits a pace record, bumps
	// the sim_pace_violations_total counter and invokes OnPace.
	Budget *Budget
	// Registry, when non-nil, receives the sim_pace_violations_total
	// counter. (First/redundant delivery counters are owned by the obs
	// Collector, which sees the same per-round numbers through
	// sim.Observer.Deliveries.)
	Registry *obs.Registry
	// OnPace, when non-nil, is invoked from the engine goroutine for every
	// pace violation, in round order.
	OnPace func(PaceViolation)
	// SLA, when positive, arms the per-token delivery deadline monitor for
	// arrival-mode runs (the steady-state generalisation of the pace
	// checker): a token garbage-collected more than SLA rounds after its
	// arrival — or still outstanding that long when the run ends — emits an
	// sla record, bumps sim_sla_violations_total and invokes OnSLA.
	SLA int
	// OnSLA, when non-nil, is invoked from the engine goroutine for every
	// SLA violation, in round order (outstanding-at-end violations fire at
	// Flush).
	OnSLA func(SLAViolation)
}

// tshard is one worker shard's private tracer state. The engine's shard
// partition is fixed for a run and each node belongs to exactly one shard,
// so everything here is touched by a single goroutine per round.
type tshard struct {
	// edges buffers this round's first-delivery edges, ascending learner
	// (the shard walks its node range in order) and ascending token within
	// a learner.
	edges []Edge
	// red / redTokens / redByKind accumulate this round's redundancy.
	red       int64
	redTokens int64
	redByKind [sim.NumKinds]int64
	// redBySender accumulates whole-run per-sender redundant-message
	// counts. A shard hears messages from senders outside its node range,
	// so each shard needs the full n-sized array; they merge at Flush.
	redBySender []int64
	// newly / useful / credit are per-call scratch.
	newly  bitset.Set
	useful []bool
	credit []int32
}

// Tracer implements sim.Tracer. Create one per run with New, point
// sim.Options.Tracer at it, and call Flush when the run returns.
type Tracer struct {
	cfg    Config
	n, k   int
	round  int
	hier   *ctvg.Hierarchy
	known  []bitset.Set // per-node persistent known-token sets
	shards []tshard
	buf    []byte // encode scratch, flushed to Sink once per round
	err    error  // first Sink write error, sticky
	log    *Log   // non-nil when cfg.Keep

	meta           Meta
	first          int64
	redundant      int64
	redTokens      int64
	redByKind      [sim.NumKinds]int64
	paceViolations int
	paceC          *obs.Counter
	flushed        bool

	// Arrival-mode state (sim.ArrivalTracer), initialised lazily on the
	// first Injected/Collected callback so batch runs pay nothing. born/seq
	// shadow the engine's per-slot identity, liveArr the outstanding slots —
	// the SLA monitor needs both to age uncollected tokens at Flush.
	arrOn         bool
	born          []int
	seqs          []int64
	liveArr       bitset.Set
	arrivals      int64
	collectedTok  int64
	slaViolations int
	slaC          *obs.Counter

	// Self-stabilization totals (sim.MaintenanceTracer), fed once per
	// round by the engine when Options.SelfStabilize is set; batch and
	// oracle-hierarchy runs never see the callback and pay nothing.
	elections  int64
	adoptions  int64
	headMerges int64
	maintBeac  int64
}

// New returns a Tracer for a single run.
func New(cfg Config) *Tracer {
	t := &Tracer{cfg: cfg}
	if cfg.Registry != nil {
		t.paceC = cfg.Registry.Counter("sim_pace_violations_total",
			"Phase boundaries at which a live head was behind the Theorem 1 pace.")
		t.slaC = cfg.Registry.Counter("sim_sla_violations_total",
			"Tokens that missed the per-token delivery deadline (Config.SLA).")
	}
	return t
}

// RunStart implements sim.Tracer: size the per-node and per-shard state,
// seed the known sets from the initial assignment, and emit the meta
// record. The known sets are never reset — a crash-recovered node rejoins
// with its token set intact (stable storage), and because its known set is
// intact too, re-deliveries of pre-crash tokens are counted as redundant,
// never as second first-deliveries.
func (t *Tracer) RunStart(n, k, shards int, nodes []sim.Node) {
	t.n, t.k = n, k
	t.known = make([]bitset.Set, n)
	holders := make([][]int, k)
	for v := 0; v < n; v++ {
		t.known[v].CopyFrom(nodes[v].Tokens())
		t.known[v].Range(func(tok int) bool {
			if tok < k {
				holders[tok] = append(holders[tok], v)
			}
			return true
		})
	}
	t.shards = make([]tshard, shards)
	for s := range t.shards {
		t.shards[s].redBySender = make([]int64, n)
	}
	t.meta = Meta{N: n, K: k, Holders: holders}
	if b := t.cfg.Budget; b != nil {
		t.meta.PhaseLen = b.PhaseLen
		t.meta.Phases = b.Phases
		t.meta.Alpha = b.Alpha
		t.meta.Theta = b.Theta
	}
	if t.cfg.Keep {
		t.log = &Log{Meta: t.meta}
	}
	if t.cfg.Sink != nil {
		t.buf = AppendMetaJSON(t.buf[:0], &t.meta)
		t.buf = append(t.buf, '\n')
		t.writeBuf()
	}
}

// RoundStart implements sim.Tracer.
func (t *Tracer) RoundStart(r int, hier *ctvg.Hierarchy) {
	t.round = r
	t.hier = hier
}

// Delivered implements sim.Tracer. It runs on the shard goroutine that
// owns node v, immediately after the node consumed its inbox: tokens is
// the node's post-delivery set, so the diff against the known set is
// exactly what this round's inbox taught. Each newly learned token is
// credited to the first message that carried it (non-coded directly;
// coded by coefficient membership, falling back to NoTeacher when no
// single packet explains the decode), and every cost-bearing message that
// taught nothing is charged to the redundancy account.
func (t *Tracer) Delivered(shard, v int, vw *sim.View, inbox []*sim.Message, tokens *bitset.Set) {
	sh := &t.shards[shard]
	known := &t.known[v]
	sh.newly.CopyFrom(tokens)
	sh.newly.DifferenceWith(known)

	if cap(sh.useful) < len(inbox) {
		sh.useful = make([]bool, len(inbox))
		sh.credit = make([]int32, len(inbox))
	}
	useful := sh.useful[:len(inbox)]
	credit := sh.credit[:len(inbox)]
	for i := range useful {
		useful[i] = false
		credit[i] = 0
	}

	if !sh.newly.Empty() {
		sh.newly.Range(func(tok int) bool {
			ti := -1
			for i, m := range inbox {
				if m.Kind != sim.KindCoded && m.Tokens != nil && m.Tokens.Contains(tok) {
					ti = i
					break
				}
			}
			if ti < 0 {
				// Coded attribution: the first packet whose coefficient
				// vector involves the token, else the decode has no single
				// source.
				for i, m := range inbox {
					if m.Kind == sim.KindCoded && m.Tokens != nil && m.Tokens.Contains(tok) {
						ti = i
						break
					}
				}
			}
			e := Edge{
				Round:       t.round,
				Token:       tok,
				Learner:     v,
				Teacher:     NoTeacher,
				Kind:        sim.KindCoded,
				TeacherRole: ctvg.Unaffiliated,
				Cluster:     vw.Head,
			}
			if ti >= 0 {
				m := inbox[ti]
				e.Teacher = m.From
				e.Kind = m.Kind
				e.TeacherRole = t.hier.Role[m.From]
				useful[ti] = true
				credit[ti]++
			}
			sh.edges = append(sh.edges, e)
			return true
		})
		known.CopyFrom(tokens)
	}

	for i, m := range inbox {
		if m.Cost() == 0 {
			continue
		}
		if !useful[i] {
			sh.red++
			if int(m.Kind) < sim.NumKinds {
				sh.redByKind[m.Kind]++
			}
			sh.redBySender[m.From]++
		}
		if m.Kind != sim.KindCoded && m.Tokens != nil {
			if extra := int64(m.Tokens.Len()) - int64(credit[i]); extra > 0 {
				sh.redTokens += extra
			}
		}
	}
}

// RoundEnd implements sim.Tracer: merge the shard buffers in shard order —
// ascending learner order, identical to a serial run — emit this round's
// records, and run the pace check at phase boundaries.
func (t *Tracer) RoundEnd(r int, crashed []bool) (first, redundant int) {
	// Note: t.buf is NOT reset here — writeBuf already leaves it empty, and
	// in arrival mode it holds this round's arrive records, appended by
	// Injected before the round ran. A reset here would silently discard
	// them (the bug the arrival-order regression test pins down).
	var redTok int64
	for s := range t.shards {
		sh := &t.shards[s]
		for i := range sh.edges {
			e := &sh.edges[i]
			if t.cfg.Sink != nil {
				t.buf = AppendEdgeJSON(t.buf, e)
				t.buf = append(t.buf, '\n')
			}
			if t.log != nil {
				t.log.Edges = append(t.log.Edges, *e)
			}
		}
		first += len(sh.edges)
		redundant += int(sh.red)
		redTok += sh.redTokens
		for k := range sh.redByKind {
			t.redByKind[k] += sh.redByKind[k]
		}
		sh.edges = sh.edges[:0]
		sh.red, sh.redTokens = 0, 0
		sh.redByKind = [sim.NumKinds]int64{}
	}
	t.first += int64(first)
	t.redundant += int64(redundant)
	t.redTokens += redTok

	headMin, heads := -1, 0
	for v := 0; v < t.n; v++ {
		if t.hier.Role[v] == ctvg.Head && !crashed[v] {
			heads++
			if l := t.known[v].Len(); headMin < 0 || l < headMin {
				headMin = l
			}
		}
	}
	rec := RoundRec{
		Round: r, First: first, Redundant: redundant,
		RedundantTokens: redTok, HeadMin: headMin, Heads: heads,
	}
	if t.cfg.Sink != nil {
		t.buf = AppendRoundJSON(t.buf, &rec)
		t.buf = append(t.buf, '\n')
	}
	if t.log != nil {
		t.log.Rounds = append(t.log.Rounds, rec)
	}

	if b := t.cfg.Budget; b != nil && b.PhaseLen > 0 && (r+1)%b.PhaseLen == 0 && heads > 0 {
		phase := (r + 1) / b.PhaseLen
		if b.Phases <= 0 || phase <= b.Phases {
			if req := b.RequiredHeadMin(t.k, phase); headMin < req {
				pv := PaceViolation{Round: r, Phase: phase, HeadMin: headMin, Required: req}
				t.paceViolations++
				if t.cfg.Sink != nil {
					t.buf = AppendPaceJSON(t.buf, &pv)
					t.buf = append(t.buf, '\n')
				}
				if t.log != nil {
					t.log.Pace = append(t.log.Pace, pv)
				}
				if t.paceC != nil {
					t.paceC.Inc()
				}
				if t.cfg.OnPace != nil {
					t.cfg.OnPace(pv)
				}
			}
		}
	}
	if t.cfg.Sink != nil {
		t.writeBuf()
	}
	return first, redundant
}

// Maintenance implements sim.MaintenanceTracer: attribute one round of
// the self-stabilizing protocol's repair work and beacon budget to the
// ledger. The engine invokes it right after RoundStart, so maint records
// precede the round's arrive records and edges in the stream.
func (t *Tracer) Maintenance(r int, ms sim.MaintenanceStats) {
	t.elections += int64(ms.Elections)
	t.adoptions += int64(ms.Adoptions)
	t.headMerges += int64(ms.HeadMerges)
	t.maintBeac += int64(ms.BeaconsSent)
	rec := MaintRec{
		Round:     r,
		Elections: ms.Elections, Adoptions: ms.Adoptions,
		HeadMerges: ms.HeadMerges, Beacons: ms.BeaconsSent,
		Valid: ms.Valid, Reconverged: ms.Reconverged,
	}
	if t.cfg.Sink != nil {
		t.buf = AppendMaintJSON(t.buf, &rec)
		t.buf = append(t.buf, '\n')
	}
	if t.log != nil {
		t.log.Maint = append(t.log.Maint, rec)
	}
}

// arrInit lazily sizes the arrival-mode state: the initial batch occupies
// slots 0..k-1, born at round 0 with sequence numbers equal to their slots
// (matching the engine's arrState).
func (t *Tracer) arrInit() {
	if t.arrOn {
		return
	}
	t.arrOn = true
	t.born = make([]int, t.k)
	t.seqs = make([]int64, t.k)
	for s := 0; s < t.k; s++ {
		t.seqs[s] = int64(s)
		t.liveArr.Add(s)
	}
}

// Injected implements sim.ArrivalTracer: record the token's identity
// (generation-aware — a reused slot gets fresh born/seq), seed the target's
// known set so the injection itself is a DAG root rather than a
// first-delivery edge, and buffer the arrive record. It runs on the engine
// goroutine before the round's Send, so the records land in the stream
// ahead of the round's edges.
func (t *Tracer) Injected(r, v, tok int, seq int64) {
	t.arrInit()
	for tok >= len(t.born) {
		t.born = append(t.born, 0)
		t.seqs = append(t.seqs, int64(len(t.seqs)))
	}
	t.born[tok], t.seqs[tok] = r, seq
	t.liveArr.Add(tok)
	t.known[v].Add(tok)
	t.arrivals++
	rec := ArriveRec{Round: r, Node: v, Token: tok, Seq: seq}
	if t.cfg.Sink != nil {
		t.buf = AppendArriveJSON(t.buf, &rec)
		t.buf = append(t.buf, '\n')
	}
	if t.log != nil {
		t.log.Arrivals = append(t.log.Arrivals, rec)
	}
}

// Collected implements sim.ArrivalTracer: emit one collect record per
// garbage-collected slot (ascending, with latency), check each against the
// SLA deadline, and prune every node's known set — without the pruning a
// reused slot's next generation would diff as already-known and its
// dissemination would go untraced. Runs on the engine goroutine after
// RoundEnd, so collect records follow the round record they belong to.
func (t *Tracer) Collected(r int, gc *bitset.Set) {
	t.arrInit()
	gc.Range(func(tok int) bool {
		lat := r - t.born[tok]
		rec := CollectRec{Round: r, Token: tok, Seq: t.seqs[tok], Born: t.born[tok], Latency: lat}
		t.collectedTok++
		t.liveArr.Remove(tok)
		if t.cfg.Sink != nil {
			t.buf = AppendCollectJSON(t.buf, &rec)
			t.buf = append(t.buf, '\n')
		}
		if t.log != nil {
			t.log.Collections = append(t.log.Collections, rec)
		}
		if t.cfg.SLA > 0 && lat > t.cfg.SLA {
			t.slaViolation(r, tok, lat, false)
		}
		return true
	})
	for v := range t.known {
		t.known[v].DifferenceWith(gc)
	}
	if t.cfg.Sink != nil {
		t.writeBuf()
	}
}

// slaViolation emits one deadline miss through every configured channel.
func (t *Tracer) slaViolation(r, tok, lat int, outstanding bool) {
	pv := SLAViolation{
		Round: r, Token: tok, Seq: t.seqs[tok], Born: t.born[tok],
		Latency: lat, Outstanding: outstanding,
	}
	t.slaViolations++
	if t.cfg.Sink != nil {
		t.buf = AppendSLAJSON(t.buf, &pv)
		t.buf = append(t.buf, '\n')
	}
	if t.log != nil {
		t.log.SLA = append(t.log.SLA, pv)
	}
	if t.slaC != nil {
		t.slaC.Inc()
	}
	if t.cfg.OnSLA != nil {
		t.cfg.OnSLA(pv)
	}
}

// writeBuf sends the encode buffer to the sink, latching the first error.
func (t *Tracer) writeBuf() {
	if t.err != nil || len(t.buf) == 0 {
		return
	}
	if _, err := t.cfg.Sink.Write(t.buf); err != nil {
		t.err = err
	}
	t.buf = t.buf[:0]
}

// summary merges the per-shard sender accounts and builds the run summary.
func (t *Tracer) summary() *Summary {
	s := &Summary{
		First:           t.first,
		Redundant:       t.redundant,
		RedundantTokens: t.redTokens,
		RedundantByKind: t.redByKind,
		PaceViolations:  t.paceViolations,
		Arrivals:        t.arrivals,
		Collected:       t.collectedTok,
		SLAViolations:   t.slaViolations,
		Elections:       t.elections,
		Adoptions:       t.adoptions,
		HeadMerges:      t.headMerges,

		MaintenanceBeacons: t.maintBeac,
	}
	merged := make([]int64, t.n)
	for i := range t.shards {
		for v, c := range t.shards[i].redBySender {
			merged[v] += c
		}
	}
	for v, c := range merged {
		if c > 0 {
			s.BySender = append(s.BySender, SenderRedundancy{Node: v, Count: c})
		}
	}
	sort.SliceStable(s.BySender, func(i, j int) bool {
		if s.BySender[i].Count != s.BySender[j].Count {
			return s.BySender[i].Count > s.BySender[j].Count
		}
		return s.BySender[i].Node < s.BySender[j].Node
	})
	return s
}

// Flush finalises the stream: it emits the summary record (once) and
// reports the first sink write error, if any. Call it after sim.Run
// returns; the tracer is not reusable afterwards.
func (t *Tracer) Flush() error {
	if !t.flushed {
		t.flushed = true
		// Age the still-outstanding tokens against the SLA deadline: a run
		// that ended (MaxRounds, stall) with overdue tokens in flight is a
		// deadline miss even though no collect record will ever say so.
		if t.cfg.SLA > 0 && t.arrOn {
			t.liveArr.Range(func(tok int) bool {
				if lat := t.round - t.born[tok]; lat > t.cfg.SLA {
					t.slaViolation(t.round, tok, lat, true)
				}
				return true
			})
		}
		s := t.summary()
		if t.log != nil {
			t.log.Summary = s
		}
		if t.cfg.Sink != nil {
			t.buf = AppendSummaryJSON(t.buf[:0], s)
			t.buf = append(t.buf, '\n')
			t.writeBuf()
		}
	}
	return t.err
}

// Log returns the retained log (Config.Keep only; nil otherwise). It
// finalises the summary if Flush has not run yet.
func (t *Tracer) Log() *Log {
	if t.log != nil && t.log.Summary == nil {
		_ = t.Flush()
	}
	return t.log
}

// PaceViolations returns the number of pace warnings emitted so far.
func (t *Tracer) PaceViolations() int { return t.paceViolations }

// SLAViolationCount returns the number of deadline misses recorded so far
// (outstanding-at-end misses are only counted once Flush runs).
func (t *Tracer) SLAViolationCount() int { return t.slaViolations }

var (
	_ sim.Tracer            = (*Tracer)(nil)
	_ sim.ArrivalTracer     = (*Tracer)(nil)
	_ sim.MaintenanceTracer = (*Tracer)(nil)
)
