package adversary

import (
	"hash/fnv"
	"testing"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// This file pins the exact RNG consumption of the generating adversaries,
// in the spirit of graph's TestGeneratorsRNGStreamUnchanged: the delta
// refactor (Builder-based phase materialisation, churn-set extraction,
// native WindowDelta emission) must not move a single draw. The golden
// fingerprints below were captured from the pre-delta snapshot
// implementation; they hash every round's edge set and hierarchy, the
// churn statistics, and four post-run sentinel draws from the shared rng —
// so both the generated structure and the stream position are locked.

// fingerprint folds a round sequence and the post-run rng position into
// one 64-bit FNV-1a digest.
type fingerprint struct {
	h interface{ Write([]byte) (int, error) }
}

func newFingerprint() *fingerprint { return &fingerprint{h: fnv.New64a()} }

func (f *fingerprint) word(x uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(x >> (8 * i))
	}
	f.h.Write(b[:])
}

func (f *fingerprint) graph(g *graph.Graph) {
	f.word(uint64(g.N()))
	f.word(uint64(g.M()))
	for _, e := range g.Edges() {
		f.word(uint64(e.U)<<32 | uint64(e.V))
	}
}

func (f *fingerprint) hierarchy(h *ctvg.Hierarchy) {
	for v := 0; v < h.N(); v++ {
		f.word(uint64(byte(h.Role[v]))<<32 | uint64(uint32(h.Cluster[v])))
	}
}

func (f *fingerprint) sum() uint64 {
	return f.h.(interface{ Sum64() uint64 }).Sum64()
}

// hiNetFingerprint drives a HiNet sequentially for `rounds` rounds the way
// the engine does (every round when churning, else At is also exercised at
// each round to prove round-skipping paths draw nothing) and digests
// everything observable.
func hiNetFingerprint(cfg HiNetConfig, seed uint64, rounds int) uint64 {
	rng := xrand.New(seed)
	a := NewHiNet(cfg, rng)
	f := newFingerprint()
	for r := 0; r < rounds; r++ {
		f.graph(a.At(r))
		f.hierarchy(a.HierarchyAt(r))
		f.word(uint64(a.StableUntil(r) & 0xffffffff))
	}
	st := a.Stats()
	f.word(uint64(st.Reaffiliations))
	f.word(uint64(st.HeadChanges))
	f.word(uint64(st.Phases))
	for i := 0; i < 4; i++ {
		f.word(rng.Uint64()) // post-run stream position sentinel
	}
	return f.sum()
}

// hiNetWindowFingerprint accesses only window-start rounds, the pattern the
// stability cache and delta recorder use; with ChurnEdges == 0 this must
// not perturb the stream relative to dense access.
func hiNetWindowFingerprint(cfg HiNetConfig, seed uint64, rounds int) uint64 {
	rng := xrand.New(seed)
	a := NewHiNet(cfg, rng)
	f := newFingerprint()
	for r := 0; r < rounds; r = a.StableUntil(r) + 1 {
		f.graph(a.At(r))
		f.hierarchy(a.HierarchyAt(r))
	}
	for i := 0; i < 4; i++ {
		f.word(rng.Uint64())
	}
	return f.sum()
}

func tIntervalFingerprint(n, T, churn int, seed uint64, rounds int) uint64 {
	rng := xrand.New(seed)
	a := NewTInterval(n, T, churn, rng)
	f := newFingerprint()
	for r := 0; r < rounds; r++ {
		f.graph(a.At(r))
	}
	for i := 0; i < 4; i++ {
		f.word(rng.Uint64())
	}
	return f.sum()
}

var hiNetGoldens = []struct {
	name   string
	cfg    HiNetConfig
	seed   uint64
	rounds int
	want   uint64
}{
	{
		name: "stable-L2",
		cfg: HiNetConfig{N: 60, Theta: 12, L: 2, T: 6,
			Reaffiliations: 4, HeadChurn: 2},
		seed: 1, rounds: 30, want: 0x2179b8631a8d1ea9,
	},
	{
		name: "churn-L3",
		cfg: HiNetConfig{N: 40, Theta: 8, L: 3, T: 5,
			Reaffiliations: 3, HeadChurn: 1, ChurnEdges: 6},
		seed: 2, rounds: 25, want: 0x467fa44e009f8f2f,
	},
	{
		name: "churn-L1-noheadchurn",
		cfg: HiNetConfig{N: 30, Theta: 6, L: 1, T: 4,
			Reaffiliations: 2, ChurnEdges: 2},
		seed: 3, rounds: 16, want: 0x3d62f86cd27dad7d,
	},
	{
		name: "stable-headsubset",
		cfg: HiNetConfig{N: 80, Theta: 20, Heads: 10, L: 2, T: 8,
			Reaffiliations: 6, HeadChurn: 3},
		seed: 4, rounds: 40, want: 0x6b7b50d354b12852,
	},
}

func TestHiNetRNGStreamUnchanged(t *testing.T) {
	for _, g := range hiNetGoldens {
		if got := hiNetFingerprint(g.cfg, g.seed, g.rounds); got != g.want {
			t.Errorf("%s: fingerprint %#x, want %#x — HiNet's rng draw order changed", g.name, got, g.want)
		}
	}
}

func TestHiNetRNGStreamWindowAccess(t *testing.T) {
	// Window-start-only access must consume the identical stream for
	// churn-free instances (round skipping draws nothing).
	for _, g := range hiNetGoldens {
		if g.cfg.ChurnEdges != 0 {
			continue
		}
		dense := func() uint64 {
			rng := xrand.New(g.seed)
			a := NewHiNet(g.cfg, rng)
			f := newFingerprint()
			for r := 0; r < g.rounds; r = a.StableUntil(r) + 1 {
				f.graph(a.At(r))
				f.hierarchy(a.HierarchyAt(r))
			}
			for i := 0; i < 4; i++ {
				f.word(rng.Uint64())
			}
			return f.sum()
		}()
		if got := hiNetWindowFingerprint(g.cfg, g.seed, g.rounds); got != dense {
			t.Errorf("%s: window-start access diverged from itself: %#x vs %#x", g.name, got, dense)
		}
	}
}

var tIntervalGoldens = []struct {
	name        string
	n, T, churn int
	seed        uint64
	rounds      int
	want        uint64
}{
	{name: "churny", n: 30, T: 5, churn: 4, seed: 1, rounds: 23, want: 0xe8fa336622080cd1},
	{name: "pure", n: 25, T: 4, churn: 0, seed: 2, rounds: 17, want: 0xeaf62e242e64623e},
}

func TestTIntervalRNGStreamUnchanged(t *testing.T) {
	for _, g := range tIntervalGoldens {
		if got := tIntervalFingerprint(g.n, g.T, g.churn, g.seed, g.rounds); got != g.want {
			t.Errorf("%s: fingerprint %#x, want %#x — TInterval's rng draw order changed", g.name, got, g.want)
		}
	}
}
