package adversary

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/ctvg"
	"repro/internal/geom"
	"repro/internal/hinet"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

func TestOneIntervalEveryRoundConnected(t *testing.T) {
	a := NewOneInterval(20, 0, xrand.New(1))
	for r := 0; r < 30; r++ {
		if !a.At(r).Connected() {
			t.Fatalf("round %d disconnected", r)
		}
		if a.At(r).M() != 19 {
			t.Fatalf("round %d has %d edges, want spanning tree", r, a.At(r).M())
		}
	}
	if !tvg.AlwaysConnected(a, 30) {
		t.Fatal("not 1-interval connected")
	}
}

func TestOneIntervalMemoised(t *testing.T) {
	a := NewOneInterval(10, 15, xrand.New(2))
	g1 := a.At(5)
	g2 := a.At(5)
	if g1 != g2 {
		t.Fatal("At not memoised")
	}
	if g1.M() != 15 {
		t.Fatalf("m=%d", g1.M())
	}
}

func TestOneIntervalActuallyChanges(t *testing.T) {
	a := NewOneInterval(15, 0, xrand.New(3))
	same := 0
	for r := 1; r < 20; r++ {
		if a.At(r).Equal(a.At(r - 1)) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/19 consecutive rounds identical; adversary too static", same)
	}
}

func TestOneIntervalValidation(t *testing.T) {
	for _, bad := range []struct{ n, m int }{{0, 0}, {5, 3}, {5, 11}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d m=%d accepted", bad.n, bad.m)
				}
			}()
			NewOneInterval(bad.n, bad.m, xrand.New(1))
		}()
	}
}

func TestTIntervalAlignedWindowsStable(t *testing.T) {
	const T = 5
	a := NewTInterval(20, T, 8, xrand.New(4))
	for w := 0; w < 4; w++ {
		if !tvg.WindowConnected(a, w*T, T) {
			t.Fatalf("window %d lacks stable connected spanning subgraph", w)
		}
		st := tvg.StableSubgraph(a, w*T, T)
		if st.M() < 19 {
			t.Fatalf("window %d stable subgraph too small: %d edges", w, st.M())
		}
	}
	if a.Interval() != T {
		t.Fatalf("Interval()=%d", a.Interval())
	}
}

func TestTIntervalChurnAddsEdges(t *testing.T) {
	a := NewTInterval(30, 4, 10, xrand.New(5))
	// Each round must have more edges than the bare backbone tree.
	for r := 0; r < 8; r++ {
		if a.At(r).M() <= 29 {
			t.Fatalf("round %d has no churn edges (m=%d)", r, a.At(r).M())
		}
	}
	// Backbone changes across windows (probabilistically near-certain).
	b0 := tvg.StableSubgraph(a, 0, 4)
	b1 := tvg.StableSubgraph(a, 4, 4)
	if b0.Equal(b1) {
		t.Log("warning: two consecutive backbones identical (possible but unlikely)")
	}
}

func TestTIntervalValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params accepted")
		}
	}()
	NewTInterval(10, 0, 0, xrand.New(1))
}

func TestHiNetSatisfiesModel(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  HiNetConfig
	}{
		{"L2 stable heads", HiNetConfig{N: 40, Theta: 8, L: 2, T: 12, Reaffiliations: 3, ChurnEdges: 6}},
		{"L3 with head churn", HiNetConfig{N: 50, Theta: 10, Heads: 6, L: 3, T: 15, Reaffiliations: 5, HeadChurn: 2, ChurnEdges: 4}},
		{"L1 direct heads", HiNetConfig{N: 30, Theta: 5, L: 1, T: 8, ChurnEdges: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewHiNet(tc.cfg, xrand.New(7))
			m := hinet.Model{T: tc.cfg.T, L: tc.cfg.L}
			if err := m.CheckValid(a, 5); err != nil {
				t.Fatalf("model violated: %v", err)
			}
		})
	}
}

func TestHiNetHeadPoolRespected(t *testing.T) {
	cfg := HiNetConfig{N: 40, Theta: 6, Heads: 4, L: 2, T: 5, HeadChurn: 2, Reaffiliations: 2, ChurnEdges: 2}
	a := NewHiNet(cfg, xrand.New(9))
	seen := map[int]bool{}
	for p := 0; p < 12; p++ {
		for _, h := range a.HierarchyAt(p * cfg.T).Heads() {
			seen[h] = true
		}
	}
	if len(seen) > cfg.Theta {
		t.Fatalf("%d distinct heads observed, pool bound is %d", len(seen), cfg.Theta)
	}
	if len(seen) <= cfg.Heads {
		t.Fatalf("head churn never rotated heads: only %v", seen)
	}
}

func TestHiNetStableHeadSetWhenNoChurn(t *testing.T) {
	cfg := HiNetConfig{N: 30, Theta: 5, L: 2, T: 6, Reaffiliations: 2, ChurnEdges: 3}
	a := NewHiNet(cfg, xrand.New(11))
	horizon := 8 * cfg.T
	a.At(horizon - 1) // force generation
	if !hinet.HeadSetStableForever(a, horizon) {
		t.Fatal("HeadChurn=0 should yield an ∞-interval stable head set")
	}
}

func TestHiNetReaffiliationStats(t *testing.T) {
	cfg := HiNetConfig{N: 30, Theta: 5, L: 2, T: 4, Reaffiliations: 3, ChurnEdges: 0}
	a := NewHiNet(cfg, xrand.New(13))
	a.At(5*cfg.T - 1) // 5 phases generated
	st := a.Stats()
	if st.Phases != 5 {
		t.Fatalf("phases %d", st.Phases)
	}
	// Phase 0 has no boundary; 4 boundaries x 3 re-affiliations.
	if st.Reaffiliations != 12 {
		t.Fatalf("reaffiliations %d, want 12", st.Reaffiliations)
	}
}

func TestHiNetMembershipChangesAcrossPhases(t *testing.T) {
	cfg := HiNetConfig{N: 30, Theta: 5, L: 2, T: 4, Reaffiliations: 3, ChurnEdges: 0}
	a := NewHiNet(cfg, xrand.New(15))
	h0 := a.HierarchyAt(0)
	h1 := a.HierarchyAt(cfg.T)
	diff := 0
	for v := 0; v < cfg.N; v++ {
		if h0.Cluster[v] != h1.Cluster[v] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("no membership changed across a phase boundary despite re-affiliations")
	}
}

func TestHiNetInfeasibleConfigsPanic(t *testing.T) {
	bad := []HiNetConfig{
		{N: 1, Theta: 1, L: 1, T: 1},                          // too small
		{N: 10, Theta: 0, L: 1, T: 1},                         // no heads
		{N: 10, Theta: 11, L: 1, T: 1},                        // theta > n
		{N: 10, Theta: 5, L: 4, T: 1},                         // L out of range
		{N: 10, Theta: 5, L: 2, T: 0},                         // T zero
		{N: 6, Theta: 5, Heads: 5, L: 3, T: 1},                // cannot host gateways
		{N: 30, Theta: 5, Heads: 3, L: 2, T: 1, HeadChurn: 4}, // churn > heads
		{N: 30, Theta: 5, L: 2, T: 1, Reaffiliations: -1},     // negative
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d accepted: %+v", i, cfg)
				}
			}()
			NewHiNet(cfg, xrand.New(1))
		}()
	}
}

func TestHiNetDeterministic(t *testing.T) {
	cfg := HiNetConfig{N: 25, Theta: 5, L: 2, T: 5, Reaffiliations: 2, ChurnEdges: 3}
	a := NewHiNet(cfg, xrand.New(21))
	b := NewHiNet(cfg, xrand.New(21))
	for r := 0; r < 20; r++ {
		if !a.At(r).Equal(b.At(r)) {
			t.Fatalf("round %d graphs differ", r)
		}
		if !a.HierarchyAt(r).Equal(b.HierarchyAt(r)) {
			t.Fatalf("round %d hierarchies differ", r)
		}
	}
}

func TestMobilityHierarchiesValidEveryRound(t *testing.T) {
	cfg := MobilityConfig{
		N:        40,
		Field:    geom.Field{W: 60, H: 60},
		Radius:   18,
		MinSpeed: 0.5, MaxSpeed: 2, PauseRounds: 1,
		Cluster: cluster.Config{Election: cluster.LowestID},
	}
	a := NewMobility(cfg, xrand.New(17))
	for r := 0; r < 50; r++ {
		if err := a.HierarchyAt(r).Validate(a.At(r)); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	st := a.Stats()
	if st.Reaffiliations == 0 && st.NewHeads == 0 && st.RemovedHeads == 0 {
		t.Log("note: no churn observed in 50 rounds (possible at this density)")
	}
}

func TestMobilityEnsureConnected(t *testing.T) {
	cfg := MobilityConfig{
		N:        25,
		Field:    geom.Field{W: 100, H: 100}, // sparse: would disconnect
		Radius:   12,
		MinSpeed: 1, MaxSpeed: 3,
		EnsureConnected: true,
	}
	a := NewMobility(cfg, xrand.New(19))
	if !tvg.AlwaysConnected(a, 40) {
		t.Fatal("EnsureConnected failed to keep rounds connected")
	}
}

func TestMobilityCoverage(t *testing.T) {
	// With EnsureConnected and maintenance, every node must always have a
	// head (possibly itself).
	cfg := MobilityConfig{
		N: 30, Field: geom.Field{W: 80, H: 80}, Radius: 15,
		MinSpeed: 1, MaxSpeed: 2, EnsureConnected: true,
	}
	a := NewMobility(cfg, xrand.New(23))
	for r := 0; r < 30; r++ {
		h := a.HierarchyAt(r)
		for v := 0; v < cfg.N; v++ {
			if h.HeadOf(v) == ctvg.NoCluster {
				t.Fatalf("round %d: node %d uncovered", r, v)
			}
		}
	}
}

func TestMobilityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	NewMobility(MobilityConfig{N: 0, Radius: 1}, xrand.New(1))
}

func BenchmarkHiNetRound(b *testing.B) {
	cfg := HiNetConfig{N: 100, Theta: 30, L: 2, T: 10, Reaffiliations: 3, ChurnEdges: 10}
	a := NewHiNet(cfg, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.At(i)
	}
}

func BenchmarkMobilityRound(b *testing.B) {
	cfg := MobilityConfig{
		N: 100, Field: geom.Field{W: 100, H: 100}, Radius: 20,
		MinSpeed: 1, MaxSpeed: 2, EnsureConnected: true,
	}
	a := NewMobility(cfg, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.At(i)
	}
}

func TestHiNetStableUntil(t *testing.T) {
	// Without per-round edge churn each aligned T-round phase is frozen, so
	// every round's window runs to its phase boundary.
	cfg := HiNetConfig{N: 30, Theta: 5, L: 2, T: 6, Reaffiliations: 2, HeadChurn: 1}
	a := NewHiNet(cfg, xrand.New(3))
	for _, c := range []struct{ r, want int }{
		{0, 5}, {3, 5}, {5, 5}, {6, 11}, {17, 17}, {18, 23},
	} {
		if got := a.StableUntil(c.r); got != c.want {
			t.Errorf("StableUntil(%d) = %d want %d", c.r, got, c.want)
		}
	}
	// The promise must be true: every round of a window equals its first.
	for r := 1; r < cfg.T; r++ {
		if !a.At(r).Equal(a.At(0)) {
			t.Fatalf("round %d differs from round 0 inside the promised window", r)
		}
		if !a.HierarchyAt(r).Equal(a.HierarchyAt(0)) {
			t.Fatalf("hierarchy %d differs inside the promised window", r)
		}
	}
	if a.At(cfg.T).Equal(a.At(0)) && a.HierarchyAt(cfg.T).Equal(a.HierarchyAt(0)) {
		t.Fatal("phase boundary produced no change; churn config ineffective")
	}

	// With per-round edge churn no window can be promised.
	churny := NewHiNet(HiNetConfig{N: 30, Theta: 5, L: 2, T: 6, ChurnEdges: 3}, xrand.New(3))
	for _, r := range []int{0, 4, 7} {
		if got := churny.StableUntil(r); got != r {
			t.Errorf("ChurnEdges>0: StableUntil(%d) = %d want %d", r, got, r)
		}
	}
}

func TestHiNetStableUntilNegativePanics(t *testing.T) {
	a := NewHiNet(HiNetConfig{N: 10, Theta: 3, L: 2, T: 4}, xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative round")
		}
	}()
	a.StableUntil(-1)
}
