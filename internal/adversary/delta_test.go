package adversary

import (
	"math"
	"testing"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// Delta equivalence: recording an adversary through the delta path must
// reproduce the snapshot path exactly — same graphs, same hierarchies, same
// stability windows — for churn-free and churny configurations, in both
// memoised and forward-only (streaming) modes, and whether the deltas come
// from the native WindowDelta implementation or the generic diff fallback.

func hiNetPair(cfg HiNetConfig, seed uint64) (*HiNet, *HiNet) {
	return NewHiNet(cfg, xrand.New(seed)), NewHiNet(cfg, xrand.New(seed))
}

func checkCTVGEqual(t *testing.T, dt *ctvg.DeltaTrace, tr *ctvg.Trace, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		if !dt.At(r).Equal(tr.At(r)) {
			t.Fatalf("round %d: snapshot mismatch", r)
		}
		if !dt.HierarchyAt(r).Equal(tr.HierarchyAt(r)) {
			t.Fatalf("round %d: hierarchy mismatch", r)
		}
		ds, ts := dt.StableUntil(r), tr.StableUntil(r)
		if ds != ts && !(ds == math.MaxInt && ts >= rounds-1) {
			t.Fatalf("round %d: StableUntil %d, want %d", r, ds, ts)
		}
	}
}

func TestHiNetDeltaRecordingMatchesSnapshots(t *testing.T) {
	configs := []struct {
		name   string
		cfg    HiNetConfig
		rounds int
	}{
		{"stable", HiNetConfig{N: 60, Theta: 12, L: 2, T: 6, Reaffiliations: 4, HeadChurn: 2}, 30},
		{"churny", HiNetConfig{N: 40, Theta: 8, L: 3, T: 5, Reaffiliations: 3, HeadChurn: 1, ChurnEdges: 6}, 25},
		{"flat-l1", HiNetConfig{N: 30, Theta: 6, L: 1, T: 4, Reaffiliations: 2, ChurnEdges: 2}, 16},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			snap, delt := hiNetPair(tc.cfg, 7)
			tr := ctvg.Record(snap, tc.rounds)
			dt := ctvg.RecordDeltas(delt, tc.rounds)
			checkCTVGEqual(t, dt, tr, tc.rounds)
			if err := dt.Validate(); err != nil {
				t.Fatalf("delta trace fails model validation: %v", err)
			}
		})
	}
}

func TestHiNetForwardOnlyDeltaRecording(t *testing.T) {
	cfg := HiNetConfig{N: 40, Theta: 8, L: 2, T: 5, Reaffiliations: 3, HeadChurn: 1, ChurnEdges: 4}
	snap, delt := hiNetPair(cfg, 11)
	const rounds = 35
	tr := ctvg.Record(snap, rounds)
	dt := ctvg.RecordDeltas(delt.ForwardOnly(), rounds)
	checkCTVGEqual(t, dt, tr, rounds)
}

// TestHiNetNativeDeltasMatchGenericDiff pins the native WindowDelta algebra
// against the generic snapshot diff: for every recorded window transition
// the two must produce the same delta.
func TestHiNetNativeDeltasMatchGenericDiff(t *testing.T) {
	cfg := HiNetConfig{N: 50, Theta: 10, L: 2, T: 4, Reaffiliations: 5, HeadChurn: 2, ChurnEdges: 5}
	a, b := hiNetPair(cfg, 3)
	const rounds = 24
	// Record b through a shim that hides the DeltaSource, forcing the
	// generic DeltaBetween fallback.
	type dynOnly struct{ ctvg.Dynamic }
	generic := ctvg.RecordDeltas(dynOnly{b}, rounds)
	native := ctvg.RecordDeltas(a, rounds)
	if gw, nw := generic.Windows(), native.Windows(); gw != nw {
		t.Fatalf("window count: native %d, generic %d", nw, gw)
	}
	ge, gr := generic.Changes()
	ne, nr := native.Changes()
	if ge != ne || gr != nr {
		t.Fatalf("changes: native (%d edges, %d roles), generic (%d edges, %d roles)", ne, nr, ge, gr)
	}
	checkCTVGEqual(t, native, ctvg.Record(NewHiNet(cfg, xrand.New(3)), rounds), rounds)
}

func TestTIntervalDeltaRecordingMatchesSnapshots(t *testing.T) {
	for _, tc := range []struct {
		name        string
		n, T, churn int
		seed        uint64
		rounds      int
	}{
		{"pure", 25, 4, 0, 2, 17},
		{"churny", 30, 5, 4, 1, 23},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap := NewTInterval(tc.n, tc.T, tc.churn, xrand.New(tc.seed))
			delt := NewTInterval(tc.n, tc.T, tc.churn, xrand.New(tc.seed))
			var snaps []*graph.Graph
			for r := 0; r < tc.rounds; r++ {
				snaps = append(snaps, snap.At(r).Clone())
			}
			tr := tvg.NewTrace(snaps)
			dt := tvg.RecordDeltas(delt, tc.rounds)
			for r := 0; r < tc.rounds; r++ {
				if !dt.At(r).Equal(tr.At(r)) {
					t.Fatalf("round %d: snapshot mismatch", r)
				}
				ds, ts := dt.StableUntil(r), tr.StableUntil(r)
				if ds != ts && !(ds == math.MaxInt && ts >= tc.rounds-1) {
					t.Fatalf("round %d: StableUntil %d, want %d", r, ds, ts)
				}
			}
		})
	}
}

func TestTIntervalForwardOnlyDeltaRecording(t *testing.T) {
	snap := NewTInterval(30, 5, 4, xrand.New(6))
	delt := NewTInterval(30, 5, 4, xrand.New(6)).ForwardOnly()
	const rounds = 28
	var snaps []*graph.Graph
	for r := 0; r < rounds; r++ {
		snaps = append(snaps, snap.At(r).Clone())
	}
	tr := tvg.NewTrace(snaps)
	dt := tvg.RecordDeltas(delt, rounds)
	for r := 0; r < rounds; r++ {
		if !dt.At(r).Equal(tr.At(r)) {
			t.Fatalf("round %d: snapshot mismatch", r)
		}
	}
}

func TestOneIntervalWindowDelta(t *testing.T) {
	a := NewOneInterval(20, 30, xrand.New(4))
	const rounds = 10
	dt := tvg.RecordDeltas(a, rounds)
	for r := 0; r < rounds; r++ {
		if !dt.At(r).Equal(a.At(r)) {
			t.Fatalf("round %d: snapshot mismatch", r)
		}
	}
}

// TestTIntervalStableUntil pins the new Stability implementation: aligned
// window ends without churn, per-round freshness with churn.
func TestTIntervalStableUntil(t *testing.T) {
	pure := NewTInterval(10, 4, 0, xrand.New(1))
	for _, tc := range []struct{ r, want int }{{0, 3}, {3, 3}, {4, 7}, {10, 11}} {
		if got := pure.StableUntil(tc.r); got != tc.want {
			t.Fatalf("pure StableUntil(%d) = %d, want %d", tc.r, got, tc.want)
		}
	}
	churny := NewTInterval(10, 4, 2, xrand.New(1))
	if got := churny.StableUntil(5); got != 5 {
		t.Fatalf("churny StableUntil(5) = %d, want 5", got)
	}
}
