package adversary

import (
	"fmt"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// HiNetConfig parameterises the clustered (T, L)-HiNet adversary.
type HiNetConfig struct {
	// N is the number of nodes.
	N int
	// Theta (θ) is the upper bound on the number of distinct nodes that
	// may ever serve as cluster head: heads are drawn from a fixed pool
	// of this size, matching the paper's "upper bound number of nodes
	// that can be cluster head".
	Theta int
	// Heads is the number of simultaneous cluster heads per phase
	// (0 means Theta).
	Heads int
	// L is the hop bound on cluster-head connectivity (1..3; the paper
	// notes 1-hop clusterings have L <= 3).
	L int
	// T is the phase length in rounds; the hierarchy and backbone are
	// stable within each aligned window [iT, (i+1)T).
	T int
	// Reaffiliations is the number of members moved to a different
	// cluster at each phase boundary.
	Reaffiliations int
	// HeadChurn is the number of heads replaced (from within the θ pool)
	// at each phase boundary; 0 yields the ∞-interval stable head set of
	// Remark 1.
	HeadChurn int
	// ChurnEdges is the number of random extra edges added per round on
	// top of the stable structure, making the instance genuinely dynamic.
	ChurnEdges int
}

func (c HiNetConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("adversary: N=%d too small", c.N)
	}
	if c.Theta < 1 || c.Theta > c.N {
		return fmt.Errorf("adversary: Theta=%d out of range", c.Theta)
	}
	if c.Heads < 0 || c.Heads > c.Theta {
		return fmt.Errorf("adversary: Heads=%d exceeds Theta=%d", c.Heads, c.Theta)
	}
	if c.L < 1 || c.L > 3 {
		return fmt.Errorf("adversary: L=%d not in 1..3", c.L)
	}
	if c.T < 1 {
		return fmt.Errorf("adversary: T=%d must be positive", c.T)
	}
	if c.Reaffiliations < 0 || c.HeadChurn < 0 || c.ChurnEdges < 0 {
		return fmt.Errorf("adversary: negative churn parameter")
	}
	heads := c.Heads
	if heads == 0 {
		heads = c.Theta
	}
	need := heads + (heads-1)*(c.L-1)
	if c.N < need {
		return fmt.Errorf("adversary: N=%d cannot host %d heads with L=%d (need >= %d)", c.N, heads, c.L, need)
	}
	if c.HeadChurn > heads {
		return fmt.Errorf("adversary: HeadChurn=%d exceeds head count %d", c.HeadChurn, heads)
	}
	return nil
}

// phase is the stable structure of one T-round window.
type phase struct {
	hier   *ctvg.Hierarchy
	stable *graph.Graph // member stars + gateway backbone, constant all phase
	heads  []int
	links  []link         // head-level tree edges
	gwFor  map[link][]int // gateway chain per head-tree edge
}

// link is one edge of the head-level tree.
type link struct{ from, to int }

// HiNetStats counts churn events actually applied.
type HiNetStats struct {
	// Reaffiliations is the total number of member re-affiliation events
	// across all generated phase boundaries (the paper's n_m * n_r
	// aggregate).
	Reaffiliations int
	// HeadChanges is the total number of head replacements applied.
	HeadChanges int
	// Phases is the number of phases generated so far.
	Phases int
}

// HiNet is the clustered adversary realising the paper's (T, L)-HiNet
// model (Definition 8) on aligned phase windows. Construction per phase:
// the heads (a subset of a fixed θ-node pool) are joined into a random
// head-level tree whose edges are realised as gateway chains of exactly
// L-1 intermediate nodes; every remaining node is a member with a stable
// star edge to its head; churn edges are layered per round on top. At each
// phase boundary the configured number of members re-affiliate and heads
// rotate within the pool.
//
// Dynamics are produced as deltas, not snapshot lists: each phase's stable
// graph is materialised once as a frozen CSR (member stars derived from the
// hierarchy plus the backbone), per-round churn is kept as small effective
// edge sets, and round snapshots are assembled copy-on-write with
// graph.ApplyDelta — so a churny round costs O(n + ChurnEdges), not an
// O(E) deep clone, and no per-round snapshot is ever retained beyond a
// one-round cursor. WindowDelta additionally emits the transition between
// two window-start rounds directly (ctvg.DeltaSource), which is what
// ctvg.RecordDeltas consumes.
type HiNet struct {
	cfg      HiNetConfig
	headsPer int
	pool     []int // the θ head-eligible node IDs
	rng      *xrand.Rand
	bd       *graph.Builder // reused across phase materialisations

	// phases[i] describes phase phaseBase+i; forward-only mode slides the
	// base upward and discards older phases.
	phases    []*phase
	phaseBase int
	// churn[r-churnBase] is round r's effective churn additions: canonical
	// sorted edges drawn for the round that are not already in the phase's
	// stable graph.
	churn     [][]graph.Edge
	churnBase int
	// One-round cursor for churny At: the last materialised snapshot.
	curRound int
	curG     *graph.Graph

	forward bool
	stats   HiNetStats
}

// NewHiNet builds the adversary; it panics on an infeasible configuration
// (see HiNetConfig).
func NewHiNet(cfg HiNetConfig, rng *xrand.Rand) *HiNet {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	headsPer := cfg.Heads
	if headsPer == 0 {
		headsPer = cfg.Theta
	}
	a := &HiNet{cfg: cfg, headsPer: headsPer, rng: rng,
		bd: graph.NewBuilder(cfg.N), curRound: -1}
	all := make([]int, cfg.N)
	for i := range all {
		all[i] = i
	}
	a.pool = xrand.Sample(rng, all, cfg.Theta)
	return a
}

// ForwardOnly switches the adversary into streaming mode: phases (and, as
// WindowDelta consumes them, churn sets) older than the working window are
// discarded, so memory stays O(E + ChurnEdges·retained rounds) no matter
// how many rounds are generated. Accessing a discarded round panics.
// Intended for single-pass consumers like ctvg.RecordDeltas; returns the
// receiver for chaining.
func (a *HiNet) ForwardOnly() *HiNet {
	a.forward = true
	return a
}

// Config returns the adversary's configuration.
func (a *HiNet) Config() HiNetConfig { return a.cfg }

// Stats returns churn counters for the phases generated so far.
func (a *HiNet) Stats() HiNetStats { return a.stats }

// N implements ctvg.Dynamic.
func (a *HiNet) N() int { return a.cfg.N }

// At implements ctvg.Dynamic.
func (a *HiNet) At(r int) *graph.Graph {
	if r < 0 {
		panic("adversary: negative round")
	}
	if a.cfg.ChurnEdges == 0 {
		// No per-round churn: the round graph IS the phase's stable
		// structure, so hand it out directly instead of cloning one
		// snapshot per round. Snapshot generation draws no randomness on
		// this path, so skipping rounds (as the stability cache does)
		// cannot perturb the rng stream.
		return a.phaseAt(r / a.cfg.T).stable
	}
	if r == a.curRound {
		return a.curG
	}
	a.ensureChurn(r)
	// Copy-on-write assembly: the frozen stable CSR plus this round's
	// effective churn additions. O(n + ChurnEdges), no per-edge clone, and
	// earlier rounds' snapshots stay valid in whoever still holds them.
	g := a.phaseAt(r / a.cfg.T).stable.ApplyDelta(&graph.Delta{Add: a.churnAt(r)})
	a.curRound, a.curG = r, g
	return g
}

// ensureChurn draws (and memoises) the effective churn sets of every round
// up to and including r, interleaving phase generation exactly as the
// snapshot path always did: each round first forces its phase, then draws
// ChurnEdges candidate pairs. Pairs that are self-loops, already in the
// phase's stable graph, or repeats within the round add no edge — the same
// outcomes AddEdge's no-op path used to produce — so only the effective
// additions are stored.
func (a *HiNet) ensureChurn(r int) {
	if r < a.churnBase {
		panic(fmt.Sprintf("adversary: HiNet round %d discarded (forward-only)", r))
	}
	for a.churnBase+len(a.churn) <= r {
		cur := a.churnBase + len(a.churn)
		p := a.phaseAt(cur / a.cfg.T)
		var set []graph.Edge
		for j := 0; j < a.cfg.ChurnEdges; j++ {
			u, v := a.rng.Intn(a.cfg.N), a.rng.Intn(a.cfg.N)
			if u == v {
				continue
			}
			e := graph.NormEdge(u, v)
			if p.stable.HasEdge(e.U, e.V) {
				continue
			}
			dup := false
			for _, x := range set {
				if x == e {
					dup = true
					break
				}
			}
			if !dup {
				set = append(set, e)
			}
		}
		graph.SortEdges(set)
		a.churn = append(a.churn, set)
	}
}

// churnAt returns round r's effective churn additions (ensureChurn must
// have reached r).
func (a *HiNet) churnAt(r int) []graph.Edge {
	if r < a.churnBase {
		panic(fmt.Sprintf("adversary: HiNet round %d discarded (forward-only)", r))
	}
	return a.churn[r-a.churnBase]
}

// HierarchyAt implements ctvg.Dynamic.
func (a *HiNet) HierarchyAt(r int) *ctvg.Hierarchy {
	if r < 0 {
		panic("adversary: negative round")
	}
	return a.phaseAt(r / a.cfg.T).hier
}

// StableUntil implements ctvg.Stability. With no per-round edge churn both
// the graph and the hierarchy are frozen for each aligned T-round phase
// window, so the window runs to the phase boundary; with churn edges every
// round differs and no stability can be promised.
func (a *HiNet) StableUntil(r int) int {
	if r < 0 {
		panic("adversary: negative round")
	}
	if a.cfg.ChurnEdges > 0 {
		return r
	}
	return (r/a.cfg.T+1)*a.cfg.T - 1
}

// phaseAt returns (generating as needed) the stable structure of phase i.
// In forward-only mode, only the two most recent phases are retained.
func (a *HiNet) phaseAt(i int) *phase {
	if i < a.phaseBase {
		panic(fmt.Sprintf("adversary: HiNet phase %d discarded (forward-only)", i))
	}
	for a.phaseBase+len(a.phases) <= i {
		if len(a.phases) == 0 && a.phaseBase == 0 {
			heads := xrand.Sample(a.rng, a.pool, a.headsPer)
			p := a.buildPhase(heads, nil)
			a.materialize(p)
			a.phases = append(a.phases, p)
		} else {
			a.phases = append(a.phases, a.nextPhase(a.phases[len(a.phases)-1]))
		}
		a.stats.Phases++
		if a.forward && len(a.phases) > 2 {
			a.phases[0] = nil
			a.phases = a.phases[1:]
			a.phaseBase++
		}
	}
	return a.phases[i-a.phaseBase]
}

// nextPhase derives phase i+1 from phase i: rotate heads within the pool,
// re-affiliate members, rebuild the backbone.
func (a *HiNet) nextPhase(prev *phase) *phase {
	heads := append([]int(nil), prev.heads...)

	// Head churn: replace HeadChurn current heads with pool nodes not
	// currently serving (if any exist).
	if a.cfg.HeadChurn > 0 {
		serving := make(map[int]bool, len(heads))
		for _, h := range heads {
			serving[h] = true
		}
		var bench []int
		for _, v := range a.pool {
			if !serving[v] {
				bench = append(bench, v)
			}
		}
		for c := 0; c < a.cfg.HeadChurn && len(bench) > 0; c++ {
			// Retire a random head, promote a random benched pool node.
			ri := a.rng.Intn(len(heads))
			bi := a.rng.Intn(len(bench))
			heads[ri], bench[bi] = bench[bi], heads[ri]
			a.stats.HeadChanges++
		}
	}

	return a.buildPhaseWithReaffiliation(heads, prev)
}

// buildPhaseWithReaffiliation builds a phase reusing as much of the
// previous stable structure as possible, then forcibly re-affiliates the
// configured number of members. The stable graph is materialised only
// after the re-affiliations, so a moved member's star edge is emitted once
// instead of being inserted and shifted out again — the edits live purely
// on the hierarchy (a member has exactly one stable edge, to its head).
func (a *HiNet) buildPhaseWithReaffiliation(heads []int, prev *phase) *phase {
	p := a.buildPhase(heads, prev)
	// Forced re-affiliations: move random members to a different head.
	members := []int{}
	for v := 0; v < a.cfg.N; v++ {
		if p.hier.Role[v] == ctvg.Member {
			members = append(members, v)
		}
	}
	for c := 0; c < a.cfg.Reaffiliations && len(members) > 0 && len(heads) > 1; c++ {
		v := members[a.rng.Intn(len(members))]
		old := p.hier.HeadOf(v)
		nh := heads[a.rng.Intn(len(heads))]
		for nh == old {
			nh = heads[a.rng.Intn(len(heads))]
		}
		p.hier.SetMember(v, nh)
		a.stats.Reaffiliations++
	}
	a.materialize(p)
	return p
}

// materialize builds the phase's stable graph in one frozen-CSR pass: the
// head-level backbone realised through the gateway chains, plus one star
// edge per member to its head (read back off the hierarchy, which by now
// includes any re-affiliations). Replaces the old per-edge AddEdge
// assembly, whose O(deg) insert-shifting dominated generation at 100k
// nodes; draws no randomness, so the rng stream is untouched.
func (a *HiNet) materialize(p *phase) {
	bd := a.bd
	for _, lk := range p.links {
		chain := p.gwFor[lk]
		switch a.cfg.L - 1 {
		case 0: // L=1: heads directly adjacent
			bd.Add(lk.from, lk.to)
		case 1: // L=2: one gateway, adjacent to both heads
			bd.Add(lk.from, chain[0])
			bd.Add(chain[0], lk.to)
		case 2: // L=3: two gateways
			bd.Add(lk.from, chain[0])
			bd.Add(chain[0], chain[1])
			bd.Add(chain[1], lk.to)
		}
	}
	for v, role := range p.hier.Role {
		if role == ctvg.Member {
			bd.Add(v, p.hier.Cluster[v])
		}
	}
	p.stable = bd.Build()
}

// buildPhase constructs a phase's hierarchy and stable graph for the given
// head set. When prev is non-nil, the structure is sticky: the head-level
// tree is reused if the head set is unchanged, gateway chains are reused
// per head pair, and members keep their previous head when it is still
// serving. Churn beyond the configured re-affiliations and head rotation
// is thereby avoided, so the paper's n_r parameter maps directly onto the
// forced re-affiliation count.
func (a *HiNet) buildPhase(heads []int, prev *phase) *phase {
	n := a.cfg.N
	h := ctvg.NewHierarchy(n)
	isHead := make([]bool, n)
	for _, v := range heads {
		h.SetHead(v)
		isHead[v] = true
	}

	// Head-level tree: reuse the previous tree when the head set is
	// unchanged, otherwise draw a fresh random tree (attach head i to a
	// random earlier head).
	var links []link
	if prev != nil && sameIntSet(heads, prev.heads) {
		links = prev.links
	} else {
		for i := 1; i < len(heads); i++ {
			links = append(links, link{heads[a.rng.Intn(i)], heads[i]})
		}
	}

	// Gateway chains: reuse the previous chain for a link when all its
	// nodes are still non-heads; otherwise draw fresh gateways, preferring
	// nodes not previously affiliated anywhere special. `taken` tracks
	// nodes already committed as gateways this phase.
	gwPerLink := a.cfg.L - 1
	taken := make([]bool, n)
	gwFor := make(map[link][]int, len(links))
	needFresh := 0
	for _, lk := range links {
		if prev != nil {
			chain := prev.gwFor[lk]
			ok := len(chain) == gwPerLink
			for _, g := range chain {
				if isHead[g] || taken[g] {
					ok = false
					break
				}
			}
			if ok {
				for _, g := range chain {
					taken[g] = true
				}
				gwFor[lk] = chain
				continue
			}
		}
		needFresh += gwPerLink
		gwFor[lk] = nil
	}
	// Pool of free non-head nodes for fresh chains, shuffled.
	if needFresh > 0 {
		var free []int
		for v := 0; v < n; v++ {
			if !isHead[v] && !taken[v] {
				free = append(free, v)
			}
		}
		a.rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		idx := 0
		for _, lk := range links {
			if gwFor[lk] != nil || gwPerLink == 0 {
				continue
			}
			chain := make([]int, gwPerLink)
			for c := range chain {
				chain[c] = free[idx]
				taken[free[idx]] = true
				idx++
			}
			gwFor[lk] = chain
		}
	}

	// Assign gateway roles along the backbone; the edges themselves are
	// emitted later by materialize, once the hierarchy is final.
	for _, lk := range links {
		chain := gwFor[lk]
		switch gwPerLink {
		case 1: // L=2: one gateway, adjacent to both heads
			h.SetGateway(chain[0], lk.from)
		case 2: // L=3: two gateways
			h.SetGateway(chain[0], lk.from)
			h.SetGateway(chain[1], lk.to)
		}
	}

	// Members: keep the previous head when it is still serving (whether
	// the node was a member or an affiliated gateway), else a random head.
	for v := 0; v < n; v++ {
		if isHead[v] || taken[v] {
			continue
		}
		head := -1
		if prev != nil {
			if ph := prev.hier.HeadOf(v); ph != ctvg.NoCluster && ph != v && isHead[ph] {
				head = ph
			}
		}
		if head < 0 {
			head = heads[a.rng.Intn(len(heads))]
		}
		h.SetMember(v, head)
	}
	return &phase{
		hier:  h,
		heads: append([]int(nil), heads...),
		links: links,
		gwFor: gwFor,
	}
}

// WindowDelta implements ctvg.DeltaSource: the transition between the
// snapshots (and hierarchies) of two window-start rounds, emitted natively
// from the phase structures and churn sets instead of diffing materialised
// snapshots. For rounds inside one phase only the churn sets differ, so
// the delta costs O(ChurnEdges); across a phase boundary the stable
// structures are diffed once per boundary and adjusted for the churn
// layers (a churn edge of one round may coincide with a stable edge of the
// other phase, so plain set union does not commute with the diff).
func (a *HiNet) WindowDelta(r0, r1 int) (*graph.Delta, ctvg.HierarchyDelta) {
	if r0 < 0 || r1 <= r0 {
		panic("adversary: WindowDelta needs 0 <= r0 < r1")
	}
	if a.cfg.ChurnEdges > 0 {
		a.ensureChurn(r1)
	}
	p0, p1 := a.phaseAt(r0/a.cfg.T), a.phaseAt(r1/a.cfg.T)
	var hd ctvg.HierarchyDelta
	if p0 != p1 {
		hd = ctvg.HierarchyDeltaBetween(p0.hier, p1.hier)
	}
	if a.cfg.ChurnEdges == 0 {
		if p0 == p1 {
			return &graph.Delta{}, hd
		}
		return graph.DeltaBetween(p0.stable, p1.stable), hd
	}
	c0, c1 := a.churnAt(r0), a.churnAt(r1)
	var gd *graph.Delta
	if p0 == p1 {
		// Same stable structure: the transition is pure churn algebra.
		gd = &graph.Delta{Add: edgeSetDiff(c1, c0), Remove: edgeSetDiff(c0, c1)}
	} else {
		// Round r's edge set is S ∪ C with C ∩ S = ∅ by construction, so
		// with D = diff(S0, S1):
		//   adds    = (D.Add \ C0)    ∪ (C1 \ C0 \ S0)
		//   removes = (D.Remove \ C1) ∪ (C0 \ C1 \ S1)
		d := graph.DeltaBetween(p0.stable, p1.stable)
		add := edgeSetDiff(d.Add, c0)
		for _, e := range edgeSetDiff(c1, c0) {
			if !p0.stable.HasEdge(e.U, e.V) {
				add = append(add, e)
			}
		}
		graph.SortEdges(add)
		rem := edgeSetDiff(d.Remove, c1)
		for _, e := range edgeSetDiff(c0, c1) {
			if !p1.stable.HasEdge(e.U, e.V) {
				rem = append(rem, e)
			}
		}
		graph.SortEdges(rem)
		gd = &graph.Delta{Add: add, Remove: rem}
	}
	if a.forward && r0 > a.churnBase {
		// Single-pass consumption: churn sets before the previous window
		// start can no longer be asked for.
		a.churn = a.churn[r0-a.churnBase:]
		a.churnBase = r0
	}
	return gd, hd
}

// edgeSetDiff returns the entries of a not present in b; both inputs are
// canonical sorted edge lists, so this is a linear merge.
func edgeSetDiff(a, b []graph.Edge) []graph.Edge {
	var out []graph.Edge
	j := 0
	for _, e := range a {
		for j < len(b) && (b[j].U < e.U || (b[j].U == e.U && b[j].V < e.V)) {
			j++
		}
		if j < len(b) && b[j] == e {
			continue
		}
		out = append(out, e)
	}
	return out
}

// sameIntSet reports whether a and b contain the same elements (as sets).
func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}

var (
	_ ctvg.Dynamic     = (*HiNet)(nil)
	_ ctvg.Stability   = (*HiNet)(nil)
	_ ctvg.DeltaSource = (*HiNet)(nil)
)
