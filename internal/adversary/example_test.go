package adversary_test

import (
	"fmt"

	"repro/internal/adversary"
	hinetmodel "repro/internal/hinet"
	"repro/internal/xrand"
)

// Example builds a (T, L)-HiNet adversary and verifies — rather than
// assumes — that the generated network satisfies the model it claims.
func Example() {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 40, Theta: 6, L: 2, T: 8,
		Reaffiliations: 2,
		ChurnEdges:     5,
	}, xrand.New(3))

	err := hinetmodel.Model{T: 8, L: 2}.CheckValid(adv, 4)
	fmt.Println("is a (8, 2)-HiNet over 4 phases:", err == nil)

	h := adv.HierarchyAt(0)
	fmt.Println("heads per phase:", len(h.Heads()))
	// Output:
	// is a (8, 2)-HiNet over 4 phases: true
	// heads per phase: 6
}
