package adversary

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/ctvg"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

func TestEMDGStationaryDensity(t *testing.T) {
	// With p = q the stationary edge probability is 1/2; the initial
	// snapshot should have roughly half of all possible edges.
	a := NewEMDG(30, 0.3, 0.3, false, xrand.New(1))
	g := a.At(0)
	possible := 30 * 29 / 2
	frac := float64(g.M()) / float64(possible)
	if frac < 0.38 || frac > 0.62 {
		t.Fatalf("initial density %.2f far from stationary 0.5", frac)
	}
}

func TestEMDGBirthDeathDynamics(t *testing.T) {
	a := NewEMDG(20, 0.1, 0.1, false, xrand.New(2))
	// Consecutive rounds must share most edges (death rate 0.1) but not
	// all (birth/death happen).
	g0, g1 := a.At(0), a.At(1)
	shared, died := 0, 0
	for _, e := range g0.Edges() {
		if g1.HasEdge(e.U, e.V) {
			shared++
		} else {
			died++
		}
	}
	if shared == 0 {
		t.Fatal("no edge survived a round at q=0.1")
	}
	if died == 0 && g1.M() == g0.M() {
		t.Log("note: zero churn in one round (unlikely but possible)")
	}
	// Death rate sanity: roughly 10% should die.
	frac := float64(died) / float64(g0.M())
	if frac > 0.35 {
		t.Fatalf("death fraction %.2f far above q=0.1", frac)
	}
}

func TestEMDGExtremes(t *testing.T) {
	// q=1, p=1: every edge flips every round, so each snapshot is the
	// exact complement of the previous one.
	a := NewEMDG(6, 1, 1, false, xrand.New(3))
	g0, g1 := a.At(0), a.At(1)
	if g0.M()+g1.M() != 15 {
		t.Fatalf("p=q=1 snapshots not complementary: %d + %d != 15", g0.M(), g1.M())
	}
	for _, e := range g0.Edges() {
		if g1.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v survived q=1", e)
		}
	}
	// p=0, q=1 from a stationary start of density 0: empty forever.
	b := NewEMDG(6, 0, 1, false, xrand.New(4))
	if b.At(0).M() != 0 || b.At(3).M() != 0 {
		t.Fatal("p=0 should stay empty")
	}
}

func TestEMDGPatchedIsConnected(t *testing.T) {
	a := NewEMDG(25, 0.02, 0.5, true, xrand.New(5)) // sparse without patch
	if !tvg.AlwaysConnected(a, 20) {
		t.Fatal("patched EMDG has a disconnected round")
	}
}

func TestEMDGMemoised(t *testing.T) {
	a := NewEMDG(10, 0.2, 0.2, false, xrand.New(6))
	if a.At(4) != a.At(4) {
		t.Fatal("not memoised")
	}
}

func TestEMDGValidation(t *testing.T) {
	bad := [][3]float64{{0, -0.1, 0.5}, {0, 0.5, 1.5}, {0, 0, 0}}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d accepted", i)
				}
			}()
			NewEMDG(5, c[1], c[2], false, xrand.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("n=0 accepted")
			}
		}()
		NewEMDG(0, 0.5, 0.5, false, xrand.New(1))
	}()
}

func TestClusteredEMDGHierarchyValidEveryRound(t *testing.T) {
	a := NewClusteredEMDG(30, 0.05, 0.3, cluster.Config{}, xrand.New(7))
	for r := 0; r < 40; r++ {
		if err := a.HierarchyAt(r).Validate(a.At(r)); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		// Coverage: maintenance guarantees every node has a head.
		h := a.HierarchyAt(r)
		for v := 0; v < 30; v++ {
			if h.HeadOf(v) == ctvg.NoCluster {
				t.Fatalf("round %d: node %d uncovered", r, v)
			}
		}
	}
	if a.Stats().Reaffiliations == 0 {
		t.Fatal("no re-affiliations over 40 rounds of heavy churn")
	}
}

func TestEMDGNegativeRoundPanics(t *testing.T) {
	a := NewEMDG(5, 0.5, 0.5, false, xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.At(-1)
}
