package adversary

import (
	"repro/internal/cluster"
	"repro/internal/ctvg"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// MobilityConfig parameterises the physically-driven adversary.
type MobilityConfig struct {
	// N is the number of mobile nodes.
	N int
	// Field is the deployment area.
	Field geom.Field
	// Radius is the radio range defining the unit-disk graph.
	Radius float64
	// MinSpeed/MaxSpeed/PauseRounds parameterise random waypoint.
	MinSpeed, MaxSpeed float64
	PauseRounds        int
	// Cluster configures incremental clustering maintenance.
	Cluster cluster.Config
	// EnsureConnected, when set, patches each round's snapshot with
	// bridge edges joining connected components (a long-range "base
	// station" link), guaranteeing 1-interval connectivity. Documented
	// substitution: real deployments reach this via higher density; the
	// patch keeps the dissemination guarantees exercisable at small n.
	EnsureConnected bool
}

// Mobility is a CTVG adversary driven by random-waypoint motion: each round
// the nodes move, the unit-disk snapshot is taken, and the cluster
// hierarchy is incrementally maintained (lowest-ID or highest-degree
// election, gateway re-selection). It makes no (T, L)-HiNet promise — it is
// the "reality check" adversary for examples and robustness tests.
type Mobility struct {
	cfg MobilityConfig
	mob *geom.Mobility
	rng *xrand.Rand

	snaps []*graph.Graph
	hiers []*ctvg.Hierarchy
	stats cluster.Stats
}

// NewMobility builds the adversary.
func NewMobility(cfg MobilityConfig, rng *xrand.Rand) *Mobility {
	if cfg.N < 1 || cfg.Radius <= 0 {
		panic("adversary: invalid mobility config")
	}
	return &Mobility{
		cfg: cfg,
		mob: geom.NewMobility(cfg.N, cfg.Field, cfg.MinSpeed, cfg.MaxSpeed, cfg.PauseRounds, rng.Split()),
		rng: rng,
	}
}

// N implements ctvg.Dynamic.
func (a *Mobility) N() int { return a.cfg.N }

// Stats returns accumulated clustering churn over generated rounds.
func (a *Mobility) Stats() cluster.Stats { return a.stats }

// generate materialises rounds up to and including r.
func (a *Mobility) generate(r int) {
	for len(a.snaps) <= r {
		if len(a.snaps) > 0 {
			a.mob.Step()
		}
		g := a.mob.Snapshot(a.cfg.Radius)
		if a.cfg.EnsureConnected {
			patchConnect(g, a.rng)
		}
		var h *ctvg.Hierarchy
		if len(a.hiers) == 0 {
			h = cluster.Form(g, a.cfg.Cluster)
		} else {
			var st cluster.Stats
			h, st = cluster.Maintain(g, a.hiers[len(a.hiers)-1], a.cfg.Cluster)
			a.stats.Reaffiliations += st.Reaffiliations
			a.stats.NewHeads += st.NewHeads
			a.stats.RemovedHeads += st.RemovedHeads
		}
		a.snaps = append(a.snaps, g)
		a.hiers = append(a.hiers, h)
	}
}

// At implements ctvg.Dynamic.
func (a *Mobility) At(r int) *graph.Graph {
	if r < 0 {
		panic("adversary: negative round")
	}
	a.generate(r)
	return a.snaps[r]
}

// HierarchyAt implements ctvg.Dynamic.
func (a *Mobility) HierarchyAt(r int) *ctvg.Hierarchy {
	if r < 0 {
		panic("adversary: negative round")
	}
	a.generate(r)
	return a.hiers[r]
}

// patchConnect links the components of g with random bridge edges until g
// is connected.
func patchConnect(g *graph.Graph, rng *xrand.Rand) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		a := comps[0][rng.Intn(len(comps[0]))]
		b := comps[1][rng.Intn(len(comps[1]))]
		g.AddEdge(a, b)
	}
}

var _ ctvg.Dynamic = (*Mobility)(nil)
