package adversary

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// EMDG is the Edge-Markovian Dynamic Graph of Clementi et al. (PODC 2008),
// one of the flat models the paper's conclusion proposes extending with
// clusters: every potential edge evolves as an independent two-state Markov
// chain — an absent edge appears with birth probability P (per round), a
// present edge disappears with death probability Q.
//
// EMDG makes no connectivity promise; with Patch set, each snapshot is
// patched to connectivity with bridge edges (the patched edges are part of
// the snapshot and may die in later rounds like any other edge).
type EMDG struct {
	n     int
	p, q  float64
	patch bool
	rng   *xrand.Rand
	snaps []*graph.Graph
}

// NewEMDG creates an edge-Markovian adversary with birth rate p and death
// rate q. The initial snapshot draws each edge with the chain's stationary
// probability p/(p+q), so the process starts in equilibrium.
func NewEMDG(n int, p, q float64, patch bool, rng *xrand.Rand) *EMDG {
	if n < 1 || p < 0 || p > 1 || q < 0 || q > 1 || p+q == 0 {
		panic(fmt.Sprintf("adversary: invalid EMDG parameters n=%d p=%f q=%f", n, p, q))
	}
	return &EMDG{n: n, p: p, q: q, patch: patch, rng: rng}
}

// N implements tvg.Dynamic.
func (a *EMDG) N() int { return a.n }

// At implements tvg.Dynamic.
func (a *EMDG) At(r int) *graph.Graph {
	if r < 0 {
		panic("adversary: negative round")
	}
	for len(a.snaps) <= r {
		var g *graph.Graph
		if len(a.snaps) == 0 {
			g = graph.New(a.n)
			stationary := a.p / (a.p + a.q)
			for u := 0; u < a.n; u++ {
				for v := u + 1; v < a.n; v++ {
					if a.rng.Prob(stationary) {
						g.AddEdge(u, v)
					}
				}
			}
		} else {
			prev := a.snaps[len(a.snaps)-1]
			g = graph.New(a.n)
			for u := 0; u < a.n; u++ {
				for v := u + 1; v < a.n; v++ {
					if prev.HasEdge(u, v) {
						if !a.rng.Prob(a.q) {
							g.AddEdge(u, v) // survives
						}
					} else if a.rng.Prob(a.p) {
						g.AddEdge(u, v) // born
					}
				}
			}
		}
		if a.patch {
			patchConnect(g, a.rng)
		}
		a.snaps = append(a.snaps, g)
	}
	return a.snaps[r]
}

// ClusteredEMDG implements the paper's proposed future-work model: an
// edge-Markovian topology with a cluster hierarchy maintained on top of it
// round by round (head election + incremental maintenance, as a deployed
// clustering layer would do). It is a ctvg.Dynamic with no a-priori
// (T, L)-HiNet promise — the executable form of "extending EMDG with
// clusters".
type ClusteredEMDG struct {
	*EMDG
	cfg   cluster.Config
	hiers []*ctvg.Hierarchy
	stats cluster.Stats
}

// NewClusteredEMDG layers incremental clustering over an EMDG topology.
// Snapshots are always patched to connectivity (an unconnected round can
// never disseminate, so the clustered variant targets the connected
// regime).
func NewClusteredEMDG(n int, p, q float64, cfg cluster.Config, rng *xrand.Rand) *ClusteredEMDG {
	return &ClusteredEMDG{EMDG: NewEMDG(n, p, q, true, rng), cfg: cfg}
}

// HierarchyAt implements ctvg.Dynamic.
func (a *ClusteredEMDG) HierarchyAt(r int) *ctvg.Hierarchy {
	if r < 0 {
		panic("adversary: negative round")
	}
	for len(a.hiers) <= r {
		g := a.At(len(a.hiers))
		var h *ctvg.Hierarchy
		if len(a.hiers) == 0 {
			h = cluster.Form(g, a.cfg)
		} else {
			var st cluster.Stats
			h, st = cluster.Maintain(g, a.hiers[len(a.hiers)-1], a.cfg)
			a.stats.Reaffiliations += st.Reaffiliations
			a.stats.NewHeads += st.NewHeads
			a.stats.RemovedHeads += st.RemovedHeads
		}
		a.hiers = append(a.hiers, h)
	}
	return a.hiers[r]
}

// Stats returns accumulated clustering churn.
func (a *ClusteredEMDG) Stats() cluster.Stats { return a.stats }

var _ ctvg.Dynamic = (*ClusteredEMDG)(nil)
