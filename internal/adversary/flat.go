// Package adversary generates dynamic networks that provably satisfy the
// connectivity/stability models the paper's theorems assume.
//
// Three families are provided:
//
//   - flat adversaries for the KLO models: OneInterval (a fresh random
//     connected graph every round — worst-case 1-interval connectivity) and
//     TInterval (a random stable connected backbone per aligned window of T
//     rounds, with per-round churn edges on top);
//   - HiNet, the clustered adversary realising the paper's (T, L)-HiNet:
//     a stable hierarchy and an L-hop head backbone per phase, controlled
//     member re-affiliation and optional head churn at phase boundaries;
//   - Mobility, a physically-driven adversary (random waypoint + unit-disk
//     radio + incremental clustering) with no a-priori model guarantee,
//     used by the examples.
//
// All adversaries memoise generated rounds, so At(r) is stable across
// repeated calls, and all draw exclusively from an xrand stream given at
// construction, so runs are reproducible from a seed.
package adversary

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// OneInterval is a flat adversary producing an independent random connected
// graph every round: the hardest legal behaviour under 1-interval
// connectivity (no edge is guaranteed to survive to the next round).
type OneInterval struct {
	n     int
	m     int
	rng   *xrand.Rand
	snaps []*graph.Graph
}

// NewOneInterval returns a 1-interval connected adversary on n nodes whose
// rounds have m edges each (m >= n-1; pass 0 for the minimum, a bare
// spanning tree — maximal churn).
func NewOneInterval(n, m int, rng *xrand.Rand) *OneInterval {
	if n < 1 {
		panic("adversary: need n >= 1")
	}
	if m == 0 {
		m = n - 1
	}
	if m < n-1 || m > n*(n-1)/2 {
		panic(fmt.Sprintf("adversary: infeasible edge count m=%d for n=%d", m, n))
	}
	return &OneInterval{n: n, m: m, rng: rng}
}

// N implements tvg.Dynamic.
func (a *OneInterval) N() int { return a.n }

// At implements tvg.Dynamic; rounds are generated on demand and memoised.
func (a *OneInterval) At(r int) *graph.Graph {
	if r < 0 {
		panic("adversary: negative round")
	}
	for len(a.snaps) <= r {
		a.snaps = append(a.snaps, graph.RandomConnected(a.n, a.m, a.rng))
	}
	return a.snaps[r]
}

// TInterval is a flat adversary realising T-interval connectivity on
// aligned windows: rounds [iT, (i+1)T) share a random connected spanning
// backbone; every round adds fresh churn edges on top of it. Aligned-window
// stability is exactly what phase-structured protocols (KLO's T-interval
// algorithm, the paper's Algorithm 1) consume.
type TInterval struct {
	n         int
	T         int
	churn     int // extra random edges per round
	rng       *xrand.Rand
	snaps     []*graph.Graph
	backbones []*graph.Graph
}

// NewTInterval returns a T-interval connected adversary on n nodes with
// `churn` extra random edges per round beyond the stable backbone.
func NewTInterval(n, T, churn int, rng *xrand.Rand) *TInterval {
	if n < 1 || T < 1 || churn < 0 {
		panic("adversary: invalid TInterval parameters")
	}
	return &TInterval{n: n, T: T, churn: churn, rng: rng}
}

// N implements tvg.Dynamic.
func (a *TInterval) N() int { return a.n }

// T returns the stability interval.
func (a *TInterval) Interval() int { return a.T }

// backbone returns the stable spanning backbone of window w.
func (a *TInterval) backbone(w int) *graph.Graph {
	for len(a.backbones) <= w {
		a.backbones = append(a.backbones, graph.RandomTree(a.n, a.rng))
	}
	return a.backbones[w]
}

// At implements tvg.Dynamic.
func (a *TInterval) At(r int) *graph.Graph {
	if r < 0 {
		panic("adversary: negative round")
	}
	for len(a.snaps) <= r {
		cur := len(a.snaps)
		g := a.backbone(cur / a.T).Clone()
		for j := 0; j < a.churn; j++ {
			u, v := a.rng.Intn(a.n), a.rng.Intn(a.n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		a.snaps = append(a.snaps, g)
	}
	return a.snaps[r]
}

var (
	_ tvg.Dynamic = (*OneInterval)(nil)
	_ tvg.Dynamic = (*TInterval)(nil)
)
