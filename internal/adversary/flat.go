// Package adversary generates dynamic networks that provably satisfy the
// connectivity/stability models the paper's theorems assume.
//
// Three families are provided:
//
//   - flat adversaries for the KLO models: OneInterval (a fresh random
//     connected graph every round — worst-case 1-interval connectivity) and
//     TInterval (a random stable connected backbone per aligned window of T
//     rounds, with per-round churn edges on top);
//   - HiNet, the clustered adversary realising the paper's (T, L)-HiNet:
//     a stable hierarchy and an L-hop head backbone per phase, controlled
//     member re-affiliation and optional head churn at phase boundaries;
//   - Mobility, a physically-driven adversary (random waypoint + unit-disk
//     radio + incremental clustering) with no a-priori model guarantee,
//     used by the examples.
//
// All adversaries draw exclusively from an xrand stream given at
// construction, so runs are reproducible from a seed, and At(r) is
// content-stable across repeated calls. The structured families (TInterval,
// HiNet) produce their dynamics as deltas over frozen stable structures
// rather than memoised per-round snapshots: churny rounds are assembled
// copy-on-write in O(n + churn) and emitted natively through WindowDelta
// (tvg.DeltaSource / ctvg.DeltaSource), so recording a delta trace never
// pays an O(E) clone per round. OneInterval, whose rounds share nothing by
// design, still memoises — there is no sub-O(E) representation of maximal
// churn.
package adversary

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// OneInterval is a flat adversary producing an independent random connected
// graph every round: the hardest legal behaviour under 1-interval
// connectivity (no edge is guaranteed to survive to the next round).
type OneInterval struct {
	n     int
	m     int
	rng   *xrand.Rand
	snaps []*graph.Graph
}

// NewOneInterval returns a 1-interval connected adversary on n nodes whose
// rounds have m edges each (m >= n-1; pass 0 for the minimum, a bare
// spanning tree — maximal churn).
func NewOneInterval(n, m int, rng *xrand.Rand) *OneInterval {
	if n < 1 {
		panic("adversary: need n >= 1")
	}
	if m == 0 {
		m = n - 1
	}
	if m < n-1 || m > n*(n-1)/2 {
		panic(fmt.Sprintf("adversary: infeasible edge count m=%d for n=%d", m, n))
	}
	return &OneInterval{n: n, m: m, rng: rng}
}

// N implements tvg.Dynamic.
func (a *OneInterval) N() int { return a.n }

// At implements tvg.Dynamic; rounds are generated on demand and memoised.
func (a *OneInterval) At(r int) *graph.Graph {
	if r < 0 {
		panic("adversary: negative round")
	}
	for len(a.snaps) <= r {
		a.snaps = append(a.snaps, graph.RandomConnected(a.n, a.m, a.rng))
	}
	return a.snaps[r]
}

// WindowDelta implements tvg.DeltaSource. Every round is its own window,
// so the delta is a plain diff of consecutive snapshots; with maximal churn
// it carries O(E) changes — the model's honest price, there is nothing
// smaller to stream.
func (a *OneInterval) WindowDelta(r0, r1 int) *graph.Delta {
	if r0 < 0 || r1 <= r0 {
		panic("adversary: WindowDelta needs 0 <= r0 < r1")
	}
	return graph.DeltaBetween(a.At(r0), a.At(r1))
}

// TInterval is a flat adversary realising T-interval connectivity on
// aligned windows: rounds [iT, (i+1)T) share a random connected spanning
// backbone; every round adds fresh churn edges on top of it. Aligned-window
// stability is exactly what phase-structured protocols (KLO's T-interval
// algorithm, the paper's Algorithm 1) consume.
//
// Like HiNet, TInterval produces deltas, not snapshot lists: the backbone
// of a window is drawn once, each round's effective churn additions are
// kept as a small edge set, and At assembles the round copy-on-write over
// the frozen backbone. WindowDelta emits window transitions natively.
type TInterval struct {
	n     int
	T     int
	churn int // extra random edges per round
	rng   *xrand.Rand

	backbones []*graph.Graph
	backBase  int
	churnSets [][]graph.Edge
	churnBase int
	curRound  int
	curG      *graph.Graph
	forward   bool
}

// NewTInterval returns a T-interval connected adversary on n nodes with
// `churn` extra random edges per round beyond the stable backbone.
func NewTInterval(n, T, churn int, rng *xrand.Rand) *TInterval {
	if n < 1 || T < 1 || churn < 0 {
		panic("adversary: invalid TInterval parameters")
	}
	return &TInterval{n: n, T: T, churn: churn, rng: rng, curRound: -1}
}

// ForwardOnly switches the adversary into streaming mode: backbones and
// consumed churn sets older than the working window are discarded, so
// memory stays bounded no matter how many rounds are generated. Accessing
// a discarded round panics. Returns the receiver for chaining.
func (a *TInterval) ForwardOnly() *TInterval {
	a.forward = true
	return a
}

// N implements tvg.Dynamic.
func (a *TInterval) N() int { return a.n }

// T returns the stability interval.
func (a *TInterval) Interval() int { return a.T }

// backbone returns the stable spanning backbone of window w. In
// forward-only mode, only the two most recent backbones are retained.
func (a *TInterval) backbone(w int) *graph.Graph {
	if w < a.backBase {
		panic(fmt.Sprintf("adversary: TInterval window %d discarded (forward-only)", w))
	}
	for a.backBase+len(a.backbones) <= w {
		a.backbones = append(a.backbones, graph.RandomTree(a.n, a.rng))
		if a.forward && len(a.backbones) > 2 {
			a.backbones[0] = nil
			a.backbones = a.backbones[1:]
			a.backBase++
		}
	}
	return a.backbones[w-a.backBase]
}

// ensureChurn draws (and memoises) the effective churn additions of every
// round up to r, forcing each round's backbone before its draws exactly as
// the snapshot path always did. Self-loops, edges already in the backbone
// and within-round repeats add nothing, matching AddEdge's no-op outcomes.
func (a *TInterval) ensureChurn(r int) {
	if r < a.churnBase {
		panic(fmt.Sprintf("adversary: TInterval round %d discarded (forward-only)", r))
	}
	for a.churnBase+len(a.churnSets) <= r {
		cur := a.churnBase + len(a.churnSets)
		bb := a.backbone(cur / a.T)
		var set []graph.Edge
		for j := 0; j < a.churn; j++ {
			u, v := a.rng.Intn(a.n), a.rng.Intn(a.n)
			if u == v {
				continue
			}
			e := graph.NormEdge(u, v)
			if bb.HasEdge(e.U, e.V) {
				continue
			}
			dup := false
			for _, x := range set {
				if x == e {
					dup = true
					break
				}
			}
			if !dup {
				set = append(set, e)
			}
		}
		graph.SortEdges(set)
		a.churnSets = append(a.churnSets, set)
	}
}

func (a *TInterval) churnAt(r int) []graph.Edge {
	if r < a.churnBase {
		panic(fmt.Sprintf("adversary: TInterval round %d discarded (forward-only)", r))
	}
	return a.churnSets[r-a.churnBase]
}

// At implements tvg.Dynamic.
func (a *TInterval) At(r int) *graph.Graph {
	if r < 0 {
		panic("adversary: negative round")
	}
	if a.churn == 0 {
		// The round graph IS the window's backbone; hand it out directly.
		return a.backbone(r / a.T)
	}
	if r == a.curRound {
		return a.curG
	}
	a.ensureChurn(r)
	g := a.backbone(r / a.T).ApplyDelta(&graph.Delta{Add: a.churnAt(r)})
	a.curRound, a.curG = r, g
	return g
}

// StableUntil implements tvg.Stability: without churn every aligned
// T-window is frozen; with churn every round differs.
func (a *TInterval) StableUntil(r int) int {
	if r < 0 {
		panic("adversary: negative round")
	}
	if a.churn > 0 {
		return r
	}
	return (r/a.T+1)*a.T - 1
}

// WindowDelta implements tvg.DeltaSource; see HiNet.WindowDelta for the
// churn-layer algebra.
func (a *TInterval) WindowDelta(r0, r1 int) *graph.Delta {
	if r0 < 0 || r1 <= r0 {
		panic("adversary: WindowDelta needs 0 <= r0 < r1")
	}
	if a.churn > 0 {
		a.ensureChurn(r1)
	}
	b0, b1 := a.backbone(r0/a.T), a.backbone(r1/a.T)
	if a.churn == 0 {
		if b0 == b1 {
			return &graph.Delta{}
		}
		return graph.DeltaBetween(b0, b1)
	}
	c0, c1 := a.churnAt(r0), a.churnAt(r1)
	var gd *graph.Delta
	if b0 == b1 {
		gd = &graph.Delta{Add: edgeSetDiff(c1, c0), Remove: edgeSetDiff(c0, c1)}
	} else {
		d := graph.DeltaBetween(b0, b1)
		add := edgeSetDiff(d.Add, c0)
		for _, e := range edgeSetDiff(c1, c0) {
			if !b0.HasEdge(e.U, e.V) {
				add = append(add, e)
			}
		}
		graph.SortEdges(add)
		rem := edgeSetDiff(d.Remove, c1)
		for _, e := range edgeSetDiff(c0, c1) {
			if !b1.HasEdge(e.U, e.V) {
				rem = append(rem, e)
			}
		}
		graph.SortEdges(rem)
		gd = &graph.Delta{Add: add, Remove: rem}
	}
	if a.forward && r0 > a.churnBase {
		a.churnSets = a.churnSets[r0-a.churnBase:]
		a.churnBase = r0
	}
	return gd
}

var (
	_ tvg.Dynamic     = (*OneInterval)(nil)
	_ tvg.DeltaSource = (*OneInterval)(nil)
	_ tvg.Dynamic     = (*TInterval)(nil)
	_ tvg.Stability   = (*TInterval)(nil)
	_ tvg.DeltaSource = (*TInterval)(nil)
)
