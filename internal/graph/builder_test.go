package graph

import (
	"testing"

	"repro/internal/xrand"
)

// incrementalFromEdges is the pre-CSR reference construction: one AddEdge per
// edge on a thawed graph.
func incrementalFromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

func TestBuilderMatchesIncremental(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		nedges := rng.Intn(3 * n)
		edges := make([]Edge, 0, nedges)
		bd := NewBuilder(n)
		for i := 0; i < nedges; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges = append(edges, Edge{u, v})
			bd.Add(u, v)
		}
		want := incrementalFromEdges(n, edges)
		got := bd.Build()
		if !got.Equal(want) {
			t.Fatalf("trial %d: builder %v != incremental %v", trial, got, want)
		}
		if !got.Frozen() {
			t.Fatalf("trial %d: Build returned a non-frozen graph", trial)
		}
		if got.M() != want.M() {
			t.Fatalf("trial %d: M mismatch %d != %d", trial, got.M(), want.M())
		}
	}
}

func TestBuilderDropsSelfLoopsAndDuplicates(t *testing.T) {
	bd := NewBuilder(4)
	bd.Add(0, 1)
	bd.Add(1, 0) // duplicate, reversed
	bd.Add(2, 2) // self-loop
	bd.Add(0, 1) // duplicate
	bd.Add(3, 1)
	g := bd.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 3) || g.HasEdge(2, 2) {
		t.Fatalf("wrong edge set: %v", g.Edges())
	}
}

func TestBuilderReuse(t *testing.T) {
	bd := NewBuilder(3)
	bd.Add(0, 1)
	g1 := bd.Build()
	bd.Add(1, 2)
	g2 := bd.Build()
	if g1.M() != 1 || !g1.HasEdge(0, 1) {
		t.Fatalf("first build wrong: %v", g1.Edges())
	}
	if g2.M() != 1 || !g2.HasEdge(1, 2) || g2.HasEdge(0, 1) {
		t.Fatalf("reused build leaked state: %v", g2.Edges())
	}
}

func TestBuilderAddPanics(t *testing.T) {
	bd := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	bd.Add(0, 2)
}

func TestFrozenCloneCopyOnWrite(t *testing.T) {
	g := FromEdgeList(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if !g.Frozen() {
		t.Fatal("FromEdgeList did not freeze")
	}
	c := g.Clone()
	if !c.Frozen() {
		t.Fatal("Clone of frozen graph should stay frozen")
	}
	// Mutating the clone must not be visible through the original (they
	// share the CSR backing until the first write).
	c.AddEdge(0, 3)
	if c.Frozen() {
		t.Fatal("mutated clone still reports frozen")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("clone mutation leaked into the frozen original")
	}
	c.RemoveEdge(1, 2)
	if !g.HasEdge(1, 2) {
		t.Fatal("clone removal leaked into the frozen original")
	}
	if got, want := g.M(), 3; got != want {
		t.Fatalf("original M = %d, want %d", got, want)
	}
	if got, want := c.M(), 3; got != want {
		t.Fatalf("clone M = %d, want %d", got, want)
	}
}

func TestFrozenMutateThenCloneIndependent(t *testing.T) {
	g := FromEdgeList(3, []Edge{{0, 1}})
	g.AddEdge(1, 2) // thaws g
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("thawed graphs still share storage after Clone")
	}
}

// TestGeneratorsRNGStreamUnchanged locks the exact RNG consumption of the
// random generators: the same seed must keep yielding the same graph that
// the incremental (pre-CSR) implementations produced.
func TestGeneratorsRNGStreamUnchanged(t *testing.T) {
	// Reference implementations, verbatim from the pre-Builder versions.
	refTree := func(n int, rng *xrand.Rand) *Graph {
		g := New(n)
		if n == 1 {
			return g
		}
		visited := make([]bool, n)
		cur := rng.Intn(n)
		visited[cur] = true
		remaining := n - 1
		for remaining > 0 {
			next := rng.Intn(n)
			if next == cur {
				continue
			}
			if !visited[next] {
				g.AddEdge(cur, next)
				visited[next] = true
				remaining--
			}
			cur = next
		}
		return g
	}
	refConnected := func(n, m int, rng *xrand.Rand) *Graph {
		g := refTree(n, rng)
		for g.M() < m {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		return g
	}
	refGNP := func(n int, p float64, rng *xrand.Rand) *Graph {
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Prob(p) {
					g.AddEdge(u, v)
				}
			}
		}
		return g
	}
	for seed := uint64(1); seed <= 5; seed++ {
		if got, want := RandomTree(30, xrand.New(seed)), refTree(30, xrand.New(seed)); !got.Equal(want) {
			t.Fatalf("seed %d: RandomTree diverged from incremental reference", seed)
		}
		if got, want := RandomConnected(25, 60, xrand.New(seed)), refConnected(25, 60, xrand.New(seed)); !got.Equal(want) {
			t.Fatalf("seed %d: RandomConnected diverged from incremental reference", seed)
		}
		if got, want := RandomGNP(25, 0.2, xrand.New(seed)), refGNP(25, 0.2, xrand.New(seed)); !got.Equal(want) {
			t.Fatalf("seed %d: RandomGNP diverged from incremental reference", seed)
		}
	}
	// Post-generator rng state must match too (same number of draws).
	a, b := xrand.New(9), xrand.New(9)
	RandomConnected(20, 40, a)
	refConnected(20, 40, b)
	if a.Intn(1<<30) != b.Intn(1<<30) {
		t.Fatal("RandomConnected consumed a different number of rng draws")
	}
}
