package graph

import (
	"testing"

	"repro/internal/xrand"
)

func TestDeltaBetweenAndApply(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(30)
		a := RandomConnected(n, n-1+rng.Intn(n), rng)
		b := RandomConnected(n, n-1+rng.Intn(n), rng)
		d := DeltaBetween(a, b)
		got := a.ApplyDelta(d)
		if !got.Equal(b) {
			t.Fatalf("trial %d: ApplyDelta(DeltaBetween(a,b)) != b", trial)
		}
		if got.M() != b.M() {
			t.Fatalf("trial %d: M = %d, want %d", trial, got.M(), b.M())
		}
		back := got.UnapplyDelta(d)
		if !back.Equal(a) {
			t.Fatalf("trial %d: UnapplyDelta did not rewind to a", trial)
		}
		// Canonical order and disjointness.
		for i := 1; i < len(d.Add); i++ {
			if d.Add[i-1].U > d.Add[i].U || (d.Add[i-1].U == d.Add[i].U && d.Add[i-1].V >= d.Add[i].V) {
				t.Fatalf("trial %d: Add list not sorted", trial)
			}
		}
		for _, e := range d.Add {
			if e.U >= e.V {
				t.Fatalf("trial %d: non-canonical add %v", trial, e)
			}
		}
	}
}

func TestDeltaBetweenIdentical(t *testing.T) {
	g := FromEdgeList(4, []Edge{{0, 1}, {1, 2}})
	if d := DeltaBetween(g, g); !d.Empty() {
		t.Fatalf("self-delta not empty: %+v", d)
	}
	if d := DeltaBetween(g, g.Clone()); !d.Empty() {
		t.Fatalf("clone-delta not empty: %+v", d)
	}
}

func TestApplyDeltaCopyOnWrite(t *testing.T) {
	g := FromEdgeList(6, []Edge{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	d := &Delta{Add: []Edge{{2, 3}}, Remove: []Edge{{0, 1}}}
	h := g.ApplyDelta(d)

	// Source unchanged.
	if !g.HasEdge(0, 1) || g.HasEdge(2, 3) || g.M() != 4 {
		t.Fatal("ApplyDelta mutated its receiver")
	}
	if h.HasEdge(0, 1) || !h.HasEdge(2, 3) || h.M() != 4 {
		t.Fatalf("ApplyDelta result wrong: %v", h)
	}
	// Untouched vertices share storage; later mutation of either graph
	// must not leak into the other (both sides are frozen).
	if &g.adj[5][0] != &h.adj[5][0] {
		t.Fatal("untouched adjacency was copied, not shared")
	}
	h.AddEdge(5, 0)
	if g.HasEdge(5, 0) {
		t.Fatal("mutation of the derived graph leaked into the source")
	}
	g.RemoveEdge(4, 5)
	if !h.HasEdge(4, 5) {
		t.Fatal("mutation of the source leaked into the derived graph")
	}
}

func TestApplyDeltaUnfrozenSourceStaysSafe(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	h := g.ApplyDelta(&Delta{Add: []Edge{{2, 3}}})
	// The unfrozen source was retroactively frozen so its next mutation
	// copies instead of writing into storage now shared with h.
	g.AddEdge(0, 3)
	if h.HasEdge(0, 3) {
		t.Fatal("source mutation leaked into the derived graph")
	}
	if !h.HasEdge(2, 3) || h.M() != 3 {
		t.Fatalf("derived graph wrong: %v", h)
	}
}

func TestApplyDeltaStrict(t *testing.T) {
	g := FromEdgeList(3, []Edge{{0, 1}})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("add existing", func() { g.ApplyDelta(&Delta{Add: []Edge{{0, 1}}}) })
	mustPanic("remove absent", func() { g.ApplyDelta(&Delta{Remove: []Edge{{1, 2}}}) })
	mustPanic("self-loop", func() { g.ApplyDelta(&Delta{Add: []Edge{{2, 2}}}) })
}

func TestDeltaInverse(t *testing.T) {
	d := &Delta{Add: []Edge{{0, 1}}, Remove: []Edge{{2, 3}}}
	inv := d.Inverse()
	if len(inv.Add) != 1 || inv.Add[0] != (Edge{2, 3}) || len(inv.Remove) != 1 || inv.Remove[0] != (Edge{0, 1}) {
		t.Fatalf("Inverse wrong: %+v", inv)
	}
	if d.Len() != 2 || d.Empty() {
		t.Fatal("Len/Empty wrong")
	}
}

func TestSortEdges(t *testing.T) {
	es := []Edge{{2, 3}, {0, 5}, {0, 2}, {1, 4}}
	SortEdges(es)
	want := []Edge{{0, 2}, {0, 5}, {1, 4}, {2, 3}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("SortEdges order %v, want %v", es, want)
		}
	}
}
