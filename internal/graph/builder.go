package graph

import "sort"

// Builder assembles a graph from a stream of edges and materialises it in
// one O(E log deg_max) pass instead of AddEdge's O(E·deg) insert-shifting.
// The result is a frozen CSR graph: one backing array holds every adjacency
// list, so a 100k-edge snapshot costs three allocations, not 2E shifted
// slice writes across n independently grown slices.
//
// Add buffers endpoints without validation beyond a range check; self-loops
// and duplicate edges are discarded during Build, matching AddEdge's
// semantics. A Builder may be reused after Build (it keeps its buffers and
// starts empty).
type Builder struct {
	n      int
	us, vs []int32
}

// NewBuilder returns a Builder for graphs on n vertices. It panics if n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// Add buffers the undirected edge {u, v}. Self-loops are dropped silently
// (as AddEdge does); duplicates are deduplicated at Build time. It panics
// on an out-of-range vertex.
func (b *Builder) Add(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic("graph: Builder.Add vertex out of range")
	}
	if u == v {
		return
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// Build materialises the buffered edges as a frozen CSR graph and resets
// the builder for reuse. Construction: count degrees, prefix-sum into
// offsets, scatter both edge directions into one backing array, sort each
// vertex's run, and compact out duplicates in place.
func (b *Builder) Build() *Graph {
	n := b.n
	g := &Graph{n: n, adj: make([][]int, n), frozen: true}
	deg := make([]int, n+1)
	for i := range b.us {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	// off[v] is the scatter cursor for v; after the scatter loop it has
	// advanced to the start of v+1's run, so off doubles as the offsets
	// array shifted by one.
	off := deg
	total := 0
	for v := 0; v <= n; v++ {
		c := off[v]
		off[v] = total
		total += c
	}
	back := make([]int, total)
	for i := range b.us {
		u, v := int(b.us[i]), int(b.vs[i])
		back[off[u]] = v
		off[u]++
		back[off[v]] = u
		off[v]++
	}
	// off[v] now marks the END of v's run (and off[n] == total); walk the
	// runs back to front within one forward sweep using the previous end.
	w, lo := 0, 0
	for v := 0; v < n; v++ {
		hi := off[v]
		run := back[lo:hi]
		sort.Ints(run)
		start := w
		prev := -1
		for _, x := range run {
			if x != prev {
				back[w] = x
				w++
				prev = x
			}
		}
		lo = hi
		g.adj[v] = back[start:w:w]
		g.m += w - start
	}
	g.m /= 2
	b.us, b.vs = b.us[:0], b.vs[:0]
	return g
}

// FromEdgeList builds a frozen CSR graph on n vertices from an edge list in
// one batch pass. Duplicate edges and self-loops are ignored, matching
// FromEdges.
func FromEdgeList(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.Add(e.U, e.V)
	}
	return b.Build()
}
