package graph

// This file implements bridge and articulation-point detection (Tarjan's
// low-link algorithm, iterative to stay stack-safe on large graphs). The
// backbone-fragility analysis uses it: a bridge in the stable head
// subgraph Υ is a single edge whose loss partitions the cluster heads, and
// an articulation gateway is a single node whose crash does the same.

// Bridges returns the bridge edges of g (edges whose removal increases the
// number of connected components), in canonical order.
func (g *Graph) Bridges() []Edge {
	bridges, _ := g.cutAnalysis()
	return bridges
}

// ArticulationPoints returns the cut vertices of g, ascending.
func (g *Graph) ArticulationPoints() []int {
	_, arts := g.cutAnalysis()
	return arts
}

// cutAnalysis runs one iterative DFS computing both bridges and
// articulation points.
func (g *Graph) cutAnalysis() ([]Edge, []int) {
	n := g.n
	disc := make([]int, n) // discovery time, 0 = unvisited
	low := make([]int, n)  // low-link
	parent := make([]int, n)
	isArt := make([]bool, n)
	var bridges []Edge
	timer := 0

	for i := range parent {
		parent[i] = -1
	}

	type frame struct {
		v   int
		idx int // next neighbour index to process
	}

	for root := 0; root < n; root++ {
		if disc[root] != 0 {
			continue
		}
		rootChildren := 0
		timer++
		disc[root] = timer
		low[root] = timer
		stack := []frame{{v: root}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			nbrs := g.adj[v]
			if f.idx < len(nbrs) {
				u := nbrs[f.idx]
				f.idx++
				switch {
				case disc[u] == 0:
					parent[u] = v
					if v == root {
						rootChildren++
					}
					timer++
					disc[u] = timer
					low[u] = timer
					stack = append(stack, frame{v: u})
				case u != parent[v]:
					if disc[u] < low[v] {
						low[v] = disc[u]
					}
				}
				continue
			}
			// Post-order: propagate low-link to the parent and detect
			// bridges / articulation points.
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p >= 0 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] > disc[p] {
					bridges = append(bridges, NormEdge(p, v))
				}
				if p != root && low[v] >= disc[p] {
					isArt[p] = true
				}
			}
		}
		if rootChildren >= 2 {
			isArt[root] = true
		}
	}

	// Canonical ordering for determinism.
	sortEdges(bridges)
	var arts []int
	for v, ok := range isArt {
		if ok {
			arts = append(arts, v)
		}
	}
	return bridges, arts
}

func sortEdges(es []Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && less(es[j], es[j-1]); j-- {
			es[j-1], es[j] = es[j], es[j-1]
		}
	}
}

func less(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}
