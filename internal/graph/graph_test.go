package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewAndBasicInvariants(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("fresh graph n=%d m=%d", g.N(), g.M())
	}
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) returned false")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate edge accepted")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if g.M() != 1 {
		t.Fatalf("m=%d want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestVertexRangePanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex did not panic")
		}
	}()
	g.AddEdge(0, 3)
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge existing returned false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge absent returned true")
	}
	if g.M() != 1 || g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("RemoveEdge corrupted graph")
	}
}

func TestNeighborsSortedAndDegree(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	nb := g.Neighbors(2)
	want := []int{0, 3, 4}
	if len(nb) != 3 || g.Degree(2) != 3 {
		t.Fatalf("neighbors %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	g.RemoveEdge(0, 1)
	if g.HasEdge(1, 2) || !c.HasEdge(0, 1) {
		t.Fatal("Clone shares storage")
	}
}

func TestEdgesAndFromEdges(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("edges %v", es)
	}
	if es[0] != (Edge{0, 2}) || es[1] != (Edge{1, 3}) {
		t.Fatalf("edges not canonical: %v", es)
	}
	h := FromEdges(4, es)
	if !g.Equal(h) {
		t.Fatal("FromEdges round trip failed")
	}
}

func TestNormEdge(t *testing.T) {
	if NormEdge(5, 2) != (Edge{2, 5}) || NormEdge(2, 5) != (Edge{2, 5}) {
		t.Fatal("NormEdge wrong")
	}
}

func TestUnionIntersectSubgraph(t *testing.T) {
	a := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	b := FromEdges(4, []Edge{{1, 2}, {2, 3}})
	u := Union(a, b)
	if u.M() != 3 || !u.HasEdge(0, 1) || !u.HasEdge(2, 3) {
		t.Fatalf("union wrong: %v", u.Edges())
	}
	i := Intersect(a, b)
	if i.M() != 1 || !i.HasEdge(1, 2) {
		t.Fatalf("intersect wrong: %v", i.Edges())
	}
	if !i.IsSubgraphOf(a) || !i.IsSubgraphOf(b) || !a.IsSubgraphOf(u) {
		t.Fatal("subgraph relation wrong")
	}
	if u.IsSubgraphOf(a) {
		t.Fatal("u subgraph of a")
	}
}

func TestUnionMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union size mismatch did not panic")
		}
	}()
	Union(New(2), New(3))
}

func TestBFSOnPath(t *testing.T) {
	g := Path(5)
	dist, parent := g.BFS(0)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d]=%d", v, dist[v])
		}
	}
	if parent[0] != -1 || parent[3] != 2 {
		t.Fatalf("parent %v", parent)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist, _ := g.BFS(0)
	if dist[2] != Inf || dist[3] != Inf || dist[1] != 1 {
		t.Fatalf("dist %v", dist)
	}
	if g.Distance(0, 3) != Inf {
		t.Fatal("Distance to unreachable not Inf")
	}
}

func TestShortestPath(t *testing.T) {
	g := Ring(6)
	p := g.ShortestPath(0, 2)
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Fatalf("path %v", p)
	}
	// Verify consecutive vertices are adjacent.
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("path %v has non-edge", p)
		}
	}
	h := New(3)
	if h.ShortestPath(0, 2) != nil {
		t.Fatal("path in disconnected graph not nil")
	}
	self := g.ShortestPath(4, 4)
	if len(self) != 1 || self[0] != 4 {
		t.Fatalf("self path %v", self)
	}
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs not connected")
	}
	if New(2).Connected() {
		t.Fatal("two isolated vertices connected")
	}
	if !Path(10).Connected() || !Ring(5).Connected() || !Complete(6).Connected() {
		t.Fatal("standard graphs not connected")
	}
}

func TestConnectedSubset(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	if !g.ConnectedSubset([]int{0, 2}) {
		t.Fatal("0,2 should be connected")
	}
	if g.ConnectedSubset([]int{0, 4}) {
		t.Fatal("0,4 should not be connected")
	}
	if !g.ConnectedSubset([]int{3}) || !g.ConnectedSubset(nil) {
		t.Fatal("small subsets should be vacuously connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 2)
	g.AddEdge(2, 4)
	g.AddEdge(1, 3)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components %v", comps)
	}
	want := [][]int{{0, 2, 4}, {1, 3}, {5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("components %v", comps)
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("components %v", comps)
			}
		}
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := Path(5)
	d, conn := g.Diameter()
	if d != 4 || !conn {
		t.Fatalf("path diameter %d conn=%v", d, conn)
	}
	ecc, all := g.Eccentricity(2)
	if ecc != 2 || !all {
		t.Fatalf("center eccentricity %d", ecc)
	}
	h := New(3)
	h.AddEdge(0, 1)
	d, conn = h.Diameter()
	if conn || d != 1 {
		t.Fatalf("disconnected diameter %d conn=%v", d, conn)
	}
}

func TestNeighborhoodWithin(t *testing.T) {
	g := Path(6)
	nb := g.NeighborhoodWithin(2, 2)
	want := []int{0, 1, 2, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("N2(2)=%v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("N2(2)=%v", nb)
		}
	}
	nb0 := g.NeighborhoodWithin(2, 0)
	if len(nb0) != 1 || nb0[0] != 2 {
		t.Fatalf("N0(2)=%v", nb0)
	}
}

func TestAllPairsMatchesBFS(t *testing.T) {
	rng := xrand.New(8)
	g := RandomConnected(12, 20, rng)
	ap := g.AllPairsDistances()
	for u := 0; u < g.N(); u++ {
		d, _ := g.BFS(u)
		for v := range d {
			if ap[u][v] != d[v] {
				t.Fatalf("AllPairs[%d][%d]=%d BFS=%d", u, v, ap[u][v], d[v])
			}
		}
	}
	// Symmetry.
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if ap[u][v] != ap[v][u] {
				t.Fatalf("distance asymmetric at %d,%d", u, v)
			}
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("sets=%d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("fresh unions returned false")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union returned true")
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Fatal("Same wrong")
	}
	if uf.Sets() != 3 {
		t.Fatalf("sets=%d want 3", uf.Sets())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{1, 2, 3, 10, 50} {
		tr := RandomTree(n, rng)
		if !tr.IsTree() {
			t.Fatalf("RandomTree(%d) not a tree: m=%d conn=%v", n, tr.M(), tr.Connected())
		}
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	rng := xrand.New(2)
	g := RandomConnected(20, 40, rng)
	if g.N() != 20 || g.M() != 40 || !g.Connected() {
		t.Fatalf("RandomConnected bad: %v connected=%v", g, g.Connected())
	}
}

func TestRandomConnectedInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible RandomConnected did not panic")
		}
	}()
	RandomConnected(5, 3, xrand.New(1))
}

func TestRandomGNPExtremes(t *testing.T) {
	rng := xrand.New(3)
	if g := RandomGNP(10, 0, rng); g.M() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	if g := RandomGNP(10, 1, rng); g.M() != 45 {
		t.Fatalf("G(10,1) has %d edges", RandomGNP(10, 1, rng).M())
	}
}

func TestScriptedTopologies(t *testing.T) {
	if Path(4).M() != 3 || Ring(4).M() != 4 || Star(5, 0).M() != 4 || Complete(5).M() != 10 {
		t.Fatal("scripted topology edge counts wrong")
	}
	if Ring(2).M() != 1 {
		t.Fatal("degenerate ring wrong")
	}
	st := Star(5, 2)
	for v := 0; v < 5; v++ {
		if v != 2 && !st.HasEdge(2, v) {
			t.Fatalf("star missing spoke to %d", v)
		}
	}
}

func TestSpanningTreeSpans(t *testing.T) {
	rng := xrand.New(4)
	g := RandomConnected(15, 30, rng)
	tr := g.SpanningTree(0)
	if !tr.IsTree() || !tr.IsSubgraphOf(g) {
		t.Fatal("SpanningTree not a spanning subtree")
	}
}

func TestQuickRandomTreeAlwaysTree(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%40)
		return RandomTree(n, xrand.New(seed)).IsTree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBFSTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := RandomConnected(10, 16, rng)
		ap := g.AllPairsDistances()
		for u := 0; u < 10; u++ {
			for v := 0; v < 10; v++ {
				for w := 0; w < 10; w++ {
					if ap[u][w] > ap[u][v]+ap[v][w] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := RandomGNP(12, 0.2, rng)
		b := RandomGNP(12, 0.2, rng)
		u := Union(a, b)
		return a.IsSubgraphOf(u) && b.IsSubgraphOf(u) &&
			Intersect(a, b).IsSubgraphOf(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := RandomConnected(500, 1500, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % 500)
	}
}

func BenchmarkRandomConnected(b *testing.B) {
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomConnected(100, 200, rng)
	}
}
