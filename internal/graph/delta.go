package graph

import (
	"fmt"
	"sort"
)

// Delta is the symmetric difference between two graphs on the same vertex
// set, split into the edges to insert and the edges to drop. Both lists are
// canonical (U < V), sorted by U then V, duplicate-free and disjoint, so a
// Delta can be compared, inverted and applied without normalisation passes.
//
// Deltas are the storage unit of the streamed dynamic-network
// representation: a T-stable trace keeps one O(|changes|) Delta per
// stability-window transition instead of one O(E) snapshot per window.
type Delta struct {
	Add    []Edge
	Remove []Edge
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool { return len(d.Add) == 0 && len(d.Remove) == 0 }

// Len returns the number of edge changes.
func (d *Delta) Len() int { return len(d.Add) + len(d.Remove) }

// Inverse returns the delta that undoes d. The edge slices are shared, not
// copied.
func (d *Delta) Inverse() *Delta { return &Delta{Add: d.Remove, Remove: d.Add} }

// SortEdges sorts edges in place into canonical Delta order (by U, then V).
// Callers assembling Delta lists by hand normalise each edge with NormEdge
// and then sort with this.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

// DeltaBetween returns the delta transforming a into b: applying the result
// to a yields a graph Equal to b. Both graphs must have the same vertex
// count. Runs in O(n + E_a + E_b) via per-vertex sorted-list merges.
func DeltaBetween(a, b *Graph) *Delta {
	if a.n != b.n {
		panic("graph: DeltaBetween on graphs with different vertex counts")
	}
	d := &Delta{}
	if a == b {
		return d
	}
	for u := 0; u < a.n; u++ {
		la, lb := a.adj[u], b.adj[u]
		i, j := 0, 0
		for i < len(la) || j < len(lb) {
			switch {
			case j == len(lb) || (i < len(la) && la[i] < lb[j]):
				if la[i] > u {
					d.Remove = append(d.Remove, Edge{u, la[i]})
				}
				i++
			case i == len(la) || la[i] > lb[j]:
				if lb[j] > u {
					d.Add = append(d.Add, Edge{u, lb[j]})
				}
				j++
			default:
				i++
				j++
			}
		}
	}
	return d
}

// ApplyDelta returns a new graph equal to g with the delta applied, sharing
// every untouched adjacency list with g (copy-on-write: only the endpoints
// named by the delta get fresh lists). The receiver is left unchanged but
// is marked frozen, so a later direct mutation of either graph copies
// before writing and the sharing stays invisible. Cost is O(n) for the
// header plus O(deg) per touched vertex — independent of |E| for small
// deltas.
//
// The delta must be strict: adding an edge already present or removing an
// absent one panics, so edge counts stay exact.
func (g *Graph) ApplyDelta(d *Delta) *Graph {
	c := &Graph{n: g.n, m: g.m + len(d.Add) - len(d.Remove), adj: make([][]int, g.n), frozen: true}
	g.frozen = true
	copy(c.adj, g.adj)
	if d.Empty() {
		return c
	}

	// Flatten both directions of every change and group them per vertex.
	type vedit struct {
		v, w int
		add  bool
	}
	ed := make([]vedit, 0, 2*d.Len())
	for _, e := range d.Add {
		g.check(e.U)
		g.check(e.V)
		if e.U == e.V {
			panic("graph: ApplyDelta with self-loop")
		}
		ed = append(ed, vedit{e.U, e.V, true}, vedit{e.V, e.U, true})
	}
	for _, e := range d.Remove {
		g.check(e.U)
		g.check(e.V)
		ed = append(ed, vedit{e.U, e.V, false}, vedit{e.V, e.U, false})
	}
	sort.Slice(ed, func(i, j int) bool {
		if ed[i].v != ed[j].v {
			return ed[i].v < ed[j].v
		}
		return ed[i].w < ed[j].w
	})

	for i := 0; i < len(ed); {
		v := ed[i].v
		j := i
		for j < len(ed) && ed[j].v == v {
			j++
		}
		// Merge v's sorted adjacency list with its sorted edit run into a
		// fresh slice; adds colliding with a present neighbour and removes
		// of an absent one panic.
		lst := g.adj[v]
		adds := 0
		for _, e := range ed[i:j] {
			if e.add {
				adds++
			}
		}
		out := make([]int, 0, len(lst)+2*adds-(j-i))
		li := 0
		for _, e := range ed[i:j] {
			for li < len(lst) && lst[li] < e.w {
				out = append(out, lst[li])
				li++
			}
			if e.add {
				if li < len(lst) && lst[li] == e.w {
					panic(fmt.Sprintf("graph: ApplyDelta adds existing edge {%d,%d}", v, e.w))
				}
				out = append(out, e.w)
			} else {
				if li == len(lst) || lst[li] != e.w {
					panic(fmt.Sprintf("graph: ApplyDelta removes absent edge {%d,%d}", v, e.w))
				}
				li++
			}
		}
		out = append(out, lst[li:]...)
		c.adj[v] = out
		i = j
	}
	return c
}

// UnapplyDelta returns a new graph equal to g with the delta undone: it
// rewinds the transition ApplyDelta performed. Same copy-on-write sharing
// and strictness as ApplyDelta.
func (g *Graph) UnapplyDelta(d *Delta) *Graph {
	return g.ApplyDelta(d.Inverse())
}
