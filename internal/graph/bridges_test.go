package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBridgesOnPath(t *testing.T) {
	// Every edge of a path is a bridge; every interior vertex articulates.
	g := Path(5)
	bridges := g.Bridges()
	if len(bridges) != 4 {
		t.Fatalf("bridges %v", bridges)
	}
	arts := g.ArticulationPoints()
	want := []int{1, 2, 3}
	if len(arts) != 3 {
		t.Fatalf("articulation points %v", arts)
	}
	for i := range want {
		if arts[i] != want[i] {
			t.Fatalf("articulation points %v", arts)
		}
	}
}

func TestBridgesOnCycle(t *testing.T) {
	g := Ring(6)
	if len(g.Bridges()) != 0 {
		t.Fatalf("cycle has bridges: %v", g.Bridges())
	}
	if len(g.ArticulationPoints()) != 0 {
		t.Fatalf("cycle has articulation points: %v", g.ArticulationPoints())
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one edge 2-3: that edge is the only bridge;
	// 2 and 3 are the only articulation points.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3)
	bridges := g.Bridges()
	if len(bridges) != 1 || bridges[0] != NormEdge(2, 3) {
		t.Fatalf("bridges %v", bridges)
	}
	arts := g.ArticulationPoints()
	if len(arts) != 2 || arts[0] != 2 || arts[1] != 3 {
		t.Fatalf("articulation points %v", arts)
	}
}

func TestBridgesStar(t *testing.T) {
	g := Star(5, 2)
	if len(g.Bridges()) != 4 {
		t.Fatalf("star bridges %v", g.Bridges())
	}
	arts := g.ArticulationPoints()
	if len(arts) != 1 || arts[0] != 2 {
		t.Fatalf("star articulation points %v", arts)
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3) // vertex 4 isolated
	bridges := g.Bridges()
	if len(bridges) != 2 {
		t.Fatalf("bridges %v", bridges)
	}
	if len(g.ArticulationPoints()) != 0 {
		t.Fatal("K2 components have no articulation points")
	}
}

func TestBridgesEmptyAndSingle(t *testing.T) {
	if len(New(0).Bridges()) != 0 || len(New(1).Bridges()) != 0 {
		t.Fatal("trivial graphs have bridges")
	}
	if len(Complete(4).Bridges()) != 0 {
		t.Fatal("K4 has bridges")
	}
}

// bruteBridges recomputes bridges by removing each edge and checking
// component counts — the oracle for the property test.
func bruteBridges(g *Graph) []Edge {
	var out []Edge
	base := len(g.Components())
	for _, e := range g.Edges() {
		h := g.Clone()
		h.RemoveEdge(e.U, e.V)
		if len(h.Components()) > base {
			out = append(out, e)
		}
	}
	return out
}

// bruteArticulation removes each vertex's edges and compares component
// counts among the remaining vertices.
func bruteArticulation(g *Graph) []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			continue
		}
		h := g.Clone()
		for _, u := range append([]int(nil), h.Neighbors(v)...) {
			h.RemoveEdge(v, u)
		}
		// Count components ignoring the now-isolated v; compare against
		// the original count ignoring nothing.
		orig := 0
		for _, c := range g.Components() {
			if len(c) > 1 || c[0] != v {
				orig++
			}
		}
		after := 0
		for _, c := range h.Components() {
			if len(c) > 1 || c[0] != v {
				after++
			}
		}
		if after > orig {
			out = append(out, v)
		}
	}
	return out
}

func TestQuickBridgesMatchOracle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 4 + rng.Intn(20)
		g := RandomGNP(n, 0.15+rng.Float64()*0.2, rng)
		got := g.Bridges()
		want := bruteBridges(g)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickArticulationMatchesOracle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 4 + rng.Intn(20)
		g := RandomGNP(n, 0.15+rng.Float64()*0.2, rng)
		got := g.ArticulationPoints()
		want := bruteArticulation(g)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBridges(b *testing.B) {
	g := RandomConnected(300, 500, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Bridges()
	}
}
