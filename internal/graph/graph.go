// Package graph implements the static undirected graphs that underlie every
// dynamic network model in this repository.
//
// A dynamic network is a sequence of static snapshots (one per round), so
// the representation is optimised for cheap construction, cloning, and
// neighbourhood iteration. Vertices are dense integers 0..n-1, matching the
// node identifiers used by the simulator.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..n-1, stored as sorted
// adjacency lists. Self-loops and parallel edges are rejected.
//
// Graphs come in two physical layouts with one logical behaviour. A graph
// assembled edge by edge (New + AddEdge) owns one slice per vertex and
// mutates freely. A graph produced by Builder.Build, FromEdgeList or
// Clone-of-frozen is frozen: its adjacency slices alias a single shared
// CSR (compressed-sparse-row) backing array, construction is O(E log E)
// instead of O(E·deg), and Clone is an O(n) header copy. Mutating a frozen
// graph is still legal — the first mutation transparently copies the
// adjacency out of the shared backing (copy-on-write), so aliased clones
// never observe each other's edits.
type Graph struct {
	n   int
	adj [][]int
	m   int
	// frozen marks adjacency slices that alias a shared CSR backing array
	// (and are therefore also shared with any frozen Clone). Mutators call
	// thaw() first; read paths never care.
	frozen bool
}

// New returns an empty graph on n vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// check panics if v is not a valid vertex.
func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Frozen reports whether the graph currently shares a CSR backing array
// (see Graph). Purely informational: mutators work on frozen graphs too.
func (g *Graph) Frozen() bool { return g.frozen }

// thaw gives every vertex its own adjacency slice so mutators can edit
// without touching storage shared with frozen clones. O(n+E), paid once by
// the first mutation after Build/Clone.
func (g *Graph) thaw() {
	if !g.frozen {
		return
	}
	for v, lst := range g.adj {
		if len(lst) > 0 {
			g.adj[v] = append([]int(nil), lst...)
		} else {
			g.adj[v] = nil
		}
	}
	g.frozen = false
}

// AddEdge inserts the undirected edge {u, v}. Adding an existing edge or a
// self-loop is a no-op returning false; a new edge returns true.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.thaw()
	g.insert(u, v)
	g.insert(v, u)
	g.m++
	return true
}

// insert places w into u's sorted adjacency list.
func (g *Graph) insert(u, w int) {
	lst := g.adj[u]
	i := sort.SearchInts(lst, w)
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = w
	g.adj[u] = lst
}

// RemoveEdge deletes the undirected edge {u, v}; it returns false if the
// edge was absent.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if !g.HasEdge(u, v) {
		return false
	}
	g.thaw()
	g.delete(u, v)
	g.delete(v, u)
	g.m--
	return true
}

func (g *Graph) delete(u, w int) {
	lst := g.adj[u]
	i := sort.SearchInts(lst, w)
	g.adj[u] = append(lst[:i], lst[i+1:]...)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	lst := g.adj[u]
	i := sort.SearchInts(lst, v)
	return i < len(lst) && lst[i] == v
}

// Neighbors returns u's adjacency list in ascending order. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Clone returns an independent copy of g. For a frozen graph this is an
// O(n) header copy sharing the immutable CSR backing — copy-on-write makes
// later mutation of either copy safe — so cloning snapshots out of a
// recorded trace costs no per-edge work.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, m: g.m, adj: make([][]int, g.n), frozen: g.frozen}
	if g.frozen {
		copy(c.adj, g.adj)
		return c
	}
	for v, lst := range g.adj {
		c.adj[v] = append([]int(nil), lst...)
	}
	return c
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// NormEdge returns the canonical (U < V) form of {u, v}.
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Edges returns all edges in canonical order (sorted by U then V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u, lst := range g.adj {
		for _, v := range lst {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// FromEdges builds a graph on n vertices from an edge list. Duplicate edges
// and self-loops are ignored. The result is a frozen CSR graph (see
// FromEdgeList, of which this is an alias kept for older call sites).
func FromEdges(n int, edges []Edge) *Graph {
	return FromEdgeList(n, edges)
}

// Union returns the union of a and b (which must have equal vertex counts).
func Union(a, b *Graph) *Graph {
	if a.n != b.n {
		panic("graph: Union of graphs with different vertex counts")
	}
	bd := NewBuilder(a.n)
	for u, lst := range a.adj {
		for _, v := range lst {
			if u < v {
				bd.Add(u, v)
			}
		}
	}
	for u, lst := range b.adj {
		for _, v := range lst {
			if u < v {
				bd.Add(u, v)
			}
		}
	}
	return bd.Build()
}

// Intersect returns the intersection of a and b (equal vertex counts).
// Both adjacency lists are sorted, so each vertex's intersection is a
// linear merge — O(n+E) overall, no per-edge binary searches.
func Intersect(a, b *Graph) *Graph {
	if a.n != b.n {
		panic("graph: Intersect of graphs with different vertex counts")
	}
	bd := NewBuilder(a.n)
	for u, la := range a.adj {
		lb := b.adj[u]
		i, j := 0, 0
		for i < len(la) && j < len(lb) {
			switch {
			case la[i] < lb[j]:
				i++
			case la[i] > lb[j]:
				j++
			default:
				if u < la[i] {
					bd.Add(u, la[i])
				}
				i++
				j++
			}
		}
	}
	return bd.Build()
}

// IsSubgraphOf reports whether every edge of g is an edge of h (same vertex
// count required).
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for u, lst := range g.adj {
		for _, v := range lst {
			if u < v && !h.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether g and h have identical vertex and edge sets.
// Adjacency lists are sorted, so a direct slice comparison runs in O(n+m)
// with no per-edge binary searches.
func (g *Graph) Equal(h *Graph) bool {
	if g == h {
		return true
	}
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u, lst := range g.adj {
		hl := h.adj[u]
		if len(lst) != len(hl) {
			return false
		}
		for i, v := range lst {
			if v != hl[i] {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "G(n=4, m=3)".
func (g *Graph) String() string {
	return fmt.Sprintf("G(n=%d, m=%d)", g.n, g.m)
}
