package graph

// This file contains traversal-based algorithms: BFS distances, connectivity,
// components, diameter, and eccentricity. All distances are hop counts;
// unreachable vertices have distance Inf.

// Inf is the distance reported for unreachable vertex pairs.
const Inf = int(^uint(0) >> 1)

// BFS returns the hop distance from src to every vertex (Inf if
// unreachable) together with a BFS parent array (-1 for src and unreachable
// vertices).
func (g *Graph) BFS(src int) (dist, parent []int) {
	g.check(src)
	dist = make([]int, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Inf {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// Distance returns the hop distance between u and v (Inf if disconnected).
func (g *Graph) Distance(u, v int) int {
	dist, _ := g.BFS(u)
	return dist[v]
}

// ShortestPath returns a shortest u-v path as a vertex sequence including
// both endpoints, or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int {
	dist, parent := g.BFS(u)
	if dist[v] == Inf {
		return nil
	}
	path := []int{v}
	for cur := v; cur != u; {
		cur = parent[cur]
		path = append(path, cur)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the graph is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d == Inf {
			return false
		}
	}
	return true
}

// ConnectedSubset reports whether all vertices in vs lie in one connected
// component of g (vacuously true for fewer than two vertices).
func (g *Graph) ConnectedSubset(vs []int) bool {
	if len(vs) <= 1 {
		return true
	}
	dist, _ := g.BFS(vs[0])
	for _, v := range vs[1:] {
		if dist[v] == Inf {
			return false
		}
	}
	return true
}

// Components returns the connected components as vertex lists (each sorted
// ascending, components ordered by smallest vertex).
func (g *Graph) Components() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(out)
		comp[s] = id
		cur := []int{s}
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = id
					cur = append(cur, v)
					queue = append(queue, v)
				}
			}
		}
		out = append(out, cur)
	}
	for _, c := range out {
		sortInts(c)
	}
	return out
}

// Eccentricity returns the greatest hop distance from v to any reachable
// vertex, and whether all vertices are reachable.
func (g *Graph) Eccentricity(v int) (ecc int, allReachable bool) {
	dist, _ := g.BFS(v)
	allReachable = true
	for _, d := range dist {
		if d == Inf {
			allReachable = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, allReachable
}

// Diameter returns the largest hop distance between any connected vertex
// pair, and whether the graph is connected. For a disconnected graph the
// returned diameter spans only within components.
func (g *Graph) Diameter() (diam int, connected bool) {
	connected = true
	for v := 0; v < g.n; v++ {
		ecc, all := g.Eccentricity(v)
		if !all {
			connected = false
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, connected
}

// AllPairsDistances returns the full hop-distance matrix via n BFS passes.
func (g *Graph) AllPairsDistances() [][]int {
	out := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		d, _ := g.BFS(v)
		out[v] = d
	}
	return out
}

// NeighborhoodWithin returns all vertices at hop distance <= d from src,
// sorted ascending. d=0 yields {src}.
func (g *Graph) NeighborhoodWithin(src, d int) []int {
	dist, _ := g.BFS(src)
	var out []int
	for v, dv := range dist {
		if dv <= d {
			out = append(out, v)
		}
	}
	return out
}

func sortInts(xs []int) {
	// Insertion sort: component lists are produced nearly ordered and are
	// typically small; avoids importing sort in this file twice.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
