package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 100
	var hits [n]int32
	ForEach(n, 4, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d invoked %d times", i, h)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(i int) { called = true })
	ForEach(-5, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn called for n <= 0")
	}
}

func TestForEachSingleWorkerSequential(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker out of order: %v", order)
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(50, 0, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 50 {
		t.Fatalf("count %d", count)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	got := Map(20, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if MeanInt64([]int64{2, 4}) != 3 {
		t.Fatal("MeanInt64 wrong")
	}
	if MeanInt64(nil) != 0 {
		t.Fatal("MeanInt64(nil)")
	}
}

func TestStddev(t *testing.T) {
	if Stddev(nil) != 0 || Stddev([]float64{5}) != 0 {
		t.Fatal("degenerate stddev not 0")
	}
	// Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got < 2.13 || got > 2.15 {
		t.Fatalf("Stddev = %f", got)
	}
	if Stddev([]float64{3, 3, 3}) != 0 {
		t.Fatal("constant samples stddev not 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMaxInt64([]int64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("min=%d max=%d", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty slice accepted")
		}
	}()
	MinMaxInt64(nil)
}

func BenchmarkForEach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 0, func(j int) {
			s := 0
			for x := 0; x < 1000; x++ {
				s += x
			}
			_ = s
		})
	}
}

func TestForEachBlockCoversAll(t *testing.T) {
	const n = 103 // intentionally not divisible by worker counts
	for _, w := range []int{0, 1, 2, 4, 7, 103, 200} {
		var hits [n]int32
		ForEachBlock(n, w, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", w, i, h)
			}
		}
	}
	called := false
	ForEachBlock(0, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForEachShardCoversAllInOrder(t *testing.T) {
	const n = 103 // intentionally not divisible by worker counts
	for _, w := range []int{0, 1, 2, 4, 7, 103, 200} {
		shards := Shards(n, w)
		if shards < 1 || shards > n {
			t.Fatalf("workers=%d: Shards=%d out of range", w, shards)
		}
		type block struct{ lo, hi int }
		got := make([]block, shards)
		var hits [n]int32
		ForEachShard(n, w, func(s, lo, hi int) {
			got[s] = block{lo, hi}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		// Shards must tile [0, n) contiguously in shard order, so merging
		// per-shard accumulators in index order equals a serial pass.
		next := 0
		for s, b := range got {
			if b.lo != next || b.hi < b.lo {
				t.Fatalf("workers=%d: shard %d is [%d, %d), want lo=%d", w, s, b.lo, b.hi, next)
			}
			next = b.hi
		}
		if next != n {
			t.Fatalf("workers=%d: shards end at %d, want %d", w, next, n)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", w, i, h)
			}
		}
	}
	called := false
	ForEachShard(0, 4, func(s, lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}
