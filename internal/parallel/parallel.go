// Package parallel provides the bounded worker pool used for Monte-Carlo
// experiment sweeps: many independent, seed-deterministic simulation runs
// fanned out across the machine's cores.
//
// Each simulation run is intentionally single-goroutine (deterministic
// message ordering); parallelism lives one level up, across replications
// and sweep points. ForEach preserves output slot order regardless of
// scheduling, so aggregated results are reproducible.
package parallel

import (
	"math"
	"runtime"
	"sync"
)

// ForEach invokes fn(i) for every i in [0, n), using up to `workers`
// goroutines (0 means GOMAXPROCS). It blocks until all invocations finish.
// fn must be safe for concurrent invocation with distinct i.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ForEachBlock invokes fn(i) for every i in [0, n) using a static
// partition into `workers` contiguous blocks, one goroutine each. Compared
// with ForEach it has no per-index scheduling overhead, which matters when
// each fn call is cheap (e.g. one protocol step per node inside a
// simulation round); the cost is no load balancing, so use it for uniform
// work.
func ForEachBlock(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForEachRange partitions [0, n) into `workers` contiguous blocks and
// invokes fn(lo, hi) once per block, concurrently. fn can keep block-local
// scratch state (buffers, accumulators) across its indices, which
// ForEachBlock cannot offer.
func ForEachRange(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Shards reports how many shards ForEachShard will use for n items under
// the given worker bound: min(workers, n), with workers <= 0 meaning
// GOMAXPROCS. Callers that pre-allocate one accumulator per shard size
// their slice with this.
func Shards(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEachShard partitions [0, n) into Shards(n, workers) contiguous blocks
// and invokes fn(shard, lo, hi) once per block, concurrently. It is
// ForEachRange plus a stable shard index: shard s always covers the s-th
// contiguous block, so per-shard accumulators merged in shard order yield
// the same result as a serial left-to-right pass — the primitive behind
// the engine's deterministic parallel observer pipeline.
func ForEachShard(n, workers int, fn func(shard, lo, hi int)) {
	w := Shards(n, workers)
	if w == 0 {
		return
	}
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for s := 0; s < w; s++ {
		lo := s * n / w
		hi := (s + 1) * n / w
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// ForEachBounds is ForEachShard with an explicit partition: bounds holds
// len(bounds)-1 contiguous blocks, shard s covering [bounds[s], bounds[s+1]).
// fn is invoked once per shard, concurrently, including for empty shards —
// callers keep per-shard accumulators and a skipped shard would leave stale
// state unmerged. Bounds must be non-decreasing and start/end at the range
// edges; the engine uses this to cut shards at equal cumulative degree
// instead of equal node count, so hub-heavy blocks no longer serialise on
// one worker while bit-identity (ascending-block merge order) is preserved.
func ForEachBounds(bounds []int, fn func(shard, lo, hi int)) {
	w := len(bounds) - 1
	if w <= 0 {
		return
	}
	if w == 1 {
		fn(0, bounds[0], bounds[1])
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for s := 0; s < w; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s, bounds[s], bounds[s+1])
		}(s)
	}
	wg.Wait()
}

// Map runs fn over [0, n) with bounded parallelism and returns the results
// in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanInt64 returns the mean of int64 samples as a float64.
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := int64(0)
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMaxInt64 returns the extrema of xs; it panics on an empty slice.
func MinMaxInt64(xs []int64) (min, max int64) {
	if len(xs) == 0 {
		panic("parallel: MinMaxInt64 of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
