package hinet

import (
	"testing"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/tvg"
)

// twoClusters builds a 7-node clustered network:
//
//	heads 0 and 4; members 1,2 -> 0 and 5 -> 4; gateway 3 joins 0 and 4
//	(path 0-3-4, so head linkage L = 2); node 6 is unaffiliated near 5.
func twoClusters() (*graph.Graph, *ctvg.Hierarchy) {
	g := graph.New(7)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	h := ctvg.NewHierarchy(7)
	h.SetHead(0)
	h.SetHead(4)
	h.SetMember(1, 0)
	h.SetMember(2, 0)
	h.SetGateway(3, 0)
	h.SetMember(5, 4)
	return g, h
}

// stableTrace repeats the two-cluster network for `rounds` rounds, adding a
// churning extra edge each round so the trace is genuinely dynamic.
func stableTrace(rounds int) *ctvg.Trace {
	snaps := make([]*graph.Graph, rounds)
	hier := make([]*ctvg.Hierarchy, rounds)
	for r := 0; r < rounds; r++ {
		g, h := twoClusters()
		// Churn: an extra edge that differs per round.
		g.AddEdge(1, 2+(r%2)*3) // 1-2 or 1-5
		snaps[r] = g
		hier[r] = h
	}
	return ctvg.NewTrace(tvg.NewTrace(snaps), hier)
}

func TestHeadSetStableOnStableTrace(t *testing.T) {
	tr := stableTrace(6)
	if !HeadSetStable(tr, 0, 6) {
		t.Fatal("stable head set reported unstable")
	}
}

func TestHeadSetStableDetectsChange(t *testing.T) {
	tr := stableTrace(6)
	h3 := tr.HierarchyAt(3)
	h3.SetHead(5) // new head appears in round 3
	if HeadSetStable(tr, 0, 6) {
		t.Fatal("head set change not detected")
	}
	if !HeadSetStable(tr, 0, 3) {
		t.Fatal("prefix window should still be stable")
	}
	if !HeadSetStable(tr, 4, 2) {
		t.Fatal("window after the change should be stable")
	}
	if HeadSetStable(tr, 3, 2) {
		t.Fatal("window straddling the change should be unstable")
	}
}

func TestClusterStable(t *testing.T) {
	tr := stableTrace(6)
	if !ClusterStable(tr, 0, 0, 6) || !ClusterStable(tr, 4, 0, 6) {
		t.Fatal("stable clusters reported unstable")
	}
	// Move member 5 from cluster 4 to cluster 0 in round 2 (also give it
	// the required adjacency).
	tr.At(2).AddEdge(0, 5)
	tr.HierarchyAt(2).SetMember(5, 0)
	if ClusterStable(tr, 4, 0, 6) {
		t.Fatal("cluster 4 change not detected")
	}
	if ClusterStable(tr, 0, 0, 6) {
		t.Fatal("cluster 0 change not detected")
	}
	// Cluster that never exists is vacuously stable.
	if !ClusterStable(tr, 1, 0, 6) {
		t.Fatal("nonexistent cluster should be stable")
	}
}

func TestHierarchyStable(t *testing.T) {
	tr := stableTrace(6)
	if !HierarchyStable(tr, 0, 6) {
		t.Fatal("stable hierarchy reported unstable")
	}
	tr.At(4).AddEdge(0, 6)
	tr.HierarchyAt(4).SetMember(6, 0)
	if HierarchyStable(tr, 0, 6) {
		t.Fatal("membership change not detected")
	}
}

// TestDefinitionTree checks the Fig. 2 implications: a T-interval stable
// hierarchy (Def 4) implies a T-interval stable head set (Def 2) and
// T-interval stability of every cluster (Def 3).
func TestDefinitionTree(t *testing.T) {
	tr := stableTrace(8)
	if !HierarchyStable(tr, 0, 8) {
		t.Fatal("precondition: hierarchy stable")
	}
	if !HeadSetStable(tr, 0, 8) {
		t.Fatal("Def 4 must imply Def 2")
	}
	for _, k := range tr.HierarchyAt(0).Heads() {
		if !ClusterStable(tr, k, 0, 8) {
			t.Fatalf("Def 4 must imply Def 3 for cluster %d", k)
		}
	}
	// Converse direction: stable head set alone does not imply stable
	// hierarchy (membership churn with fixed heads).
	tr2 := stableTrace(8)
	tr2.At(5).AddEdge(0, 6)
	tr2.HierarchyAt(5).SetMember(6, 0)
	if !HeadSetStable(tr2, 0, 8) {
		t.Fatal("head set should still be stable")
	}
	if HierarchyStable(tr2, 0, 8) {
		t.Fatal("hierarchy should be unstable")
	}
}

func TestHeadSubgraphAndConnectivity(t *testing.T) {
	tr := stableTrace(6)
	upsilon, ok := HeadSubgraph(tr, 0, 6)
	if !ok {
		t.Fatal("heads should be connected via gateway 3")
	}
	// Υ must be a stable subgraph containing both heads and the gateway
	// path between them.
	if !upsilon.HasEdge(0, 3) || !upsilon.HasEdge(3, 4) {
		t.Fatalf("Υ missing backbone: %v", upsilon.Edges())
	}
	for r := 0; r < 6; r++ {
		if !upsilon.IsSubgraphOf(tr.At(r)) {
			t.Fatalf("Υ not a subgraph of round %d", r)
		}
	}
	if !HeadConnectivity(tr, 0, 6) {
		t.Fatal("HeadConnectivity false")
	}
}

func TestHeadConnectivityFailsWhenBackboneBreaks(t *testing.T) {
	tr := stableTrace(6)
	// Cut the gateway-head edge in round 3; heads 0 and 4 lose their
	// stable connection over the full window. Keep member edges intact.
	tr.At(3).RemoveEdge(3, 4)
	// The hierarchy claims gateway 3 still serves cluster 0, fine.
	if HeadConnectivity(tr, 0, 6) {
		t.Fatal("broken backbone not detected")
	}
	if !HeadConnectivity(tr, 0, 3) {
		t.Fatal("prefix window should retain connectivity")
	}
}

func TestHeadConnectivityNoHeads(t *testing.T) {
	g := graph.Path(3)
	h := ctvg.NewHierarchy(3)
	tr := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	if !HeadConnectivity(tr, 0, 1) {
		t.Fatal("no heads should be vacuously connected")
	}
}

func TestHeadLinkage(t *testing.T) {
	g, h := twoClusters()
	L, ok := HeadLinkage(g, h.Heads())
	if !ok || L != 2 {
		t.Fatalf("linkage = %d, %v; want 2, true", L, ok)
	}
	// Single head: linkage 0.
	if L, ok := HeadLinkage(g, []int{0}); !ok || L != 0 {
		t.Fatalf("single head linkage = %d, %v", L, ok)
	}
	// Disconnected heads.
	g2 := graph.New(4)
	g2.AddEdge(0, 1)
	g2.AddEdge(2, 3)
	if _, ok := HeadLinkage(g2, []int{0, 2}); ok {
		t.Fatal("disconnected heads reported ok")
	}
}

func TestHeadLinkageBottleneck(t *testing.T) {
	// Three heads on a path 0-1-2-3-4 at positions 0, 2, 4: adjacent head
	// pairs are 2 hops apart, the extreme pair 4 hops. The bottleneck MST
	// uses the two 2-hop edges, so linkage is 2, not 4.
	g := graph.Path(5)
	L, ok := HeadLinkage(g, []int{0, 2, 4})
	if !ok || L != 2 {
		t.Fatalf("linkage = %d, %v; want 2", L, ok)
	}
}

func TestLHopHeadConnectivity(t *testing.T) {
	tr := stableTrace(6)
	if !LHopHeadConnectivity(tr, 0, 6, 2) {
		t.Fatal("L=2 should hold")
	}
	if !LHopHeadConnectivity(tr, 0, 6, 3) {
		t.Fatal("L=3 must hold when L=2 holds")
	}
	if LHopHeadConnectivity(tr, 0, 6, 1) {
		t.Fatal("L=1 should fail (heads are 2 hops apart)")
	}
}

func TestModelCheck(t *testing.T) {
	tr := stableTrace(12)
	m := Model{T: 4, L: 2}
	if err := m.Check(tr, 3); err != nil {
		t.Fatalf("valid HiNet rejected: %v", err)
	}
	if err := m.CheckValid(tr, 3); err != nil {
		t.Fatalf("CheckValid rejected: %v", err)
	}
}

func TestModelCheckWindowErrors(t *testing.T) {
	tr := stableTrace(8)
	if err := (Model{T: 0, L: 2}).CheckWindow(tr, 0); err == nil {
		t.Fatal("invalid model accepted")
	}
	// Instability inside the second phase.
	tr.At(5).AddEdge(0, 6)
	tr.HierarchyAt(5).SetMember(6, 0)
	m := Model{T: 4, L: 2}
	if err := m.CheckWindow(tr, 0); err != nil {
		t.Fatalf("first phase should pass: %v", err)
	}
	if err := m.CheckWindow(tr, 4); err == nil {
		t.Fatal("unstable second phase accepted")
	}
	if err := m.Check(tr, 2); err == nil {
		t.Fatal("Check missed unstable phase")
	}
}

func TestModelCheckLViolation(t *testing.T) {
	tr := stableTrace(4)
	if err := (Model{T: 4, L: 1}).Check(tr, 1); err == nil {
		t.Fatal("L=1 claim accepted on an L=2 network")
	}
}

func TestCheckValidCatchesStructuralBreakage(t *testing.T) {
	tr := stableTrace(4)
	// Remove a member-head edge while the hierarchy still claims the
	// membership: structural invariant violation, caught by CheckValid
	// (plain Check does not look at member adjacency).
	tr.At(2).RemoveEdge(0, 1)
	if err := (Model{T: 4, L: 2}).CheckValid(tr, 1); err == nil {
		t.Fatal("CheckValid accepted inconsistent round")
	}
}

func TestHeadSetStableForever(t *testing.T) {
	tr := stableTrace(10)
	if !HeadSetStableForever(tr, 10) {
		t.Fatal("forever-stable head set rejected")
	}
	tr.HierarchyAt(9).SetHead(6)
	if HeadSetStableForever(tr, 10) {
		t.Fatal("late head change missed")
	}
}

func TestMustWindowPanics(t *testing.T) {
	tr := stableTrace(2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid window did not panic")
		}
	}()
	HeadSetStable(tr, -1, 2)
}
