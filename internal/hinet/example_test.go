package hinet_test

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/hinet"
	"repro/internal/xrand"
)

// Example machine-checks a generated network against the (T, L)-HiNet
// model (Definition 8) and then asks the probe what model the network
// actually satisfies.
func Example() {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 30, Theta: 5, L: 2, T: 6, Reaffiliations: 2, ChurnEdges: 3,
	}, xrand.New(11))
	adv.At(17) // materialise three phases

	err := hinet.Model{T: 6, L: 2}.Check(adv, 3)
	fmt.Println("claimed (6, 2)-HiNet:", err == nil)

	err = hinet.Model{T: 6, L: 1}.Check(adv, 3)
	fmt.Println("claimed (6, 1)-HiNet:", err == nil)
	// Output:
	// claimed (6, 2)-HiNet: true
	// claimed (6, 1)-HiNet: false
}

// ExampleProbe infers the stability parameters of a recorded network.
func ExampleProbe() {
	adv := adversary.NewHiNet(adversary.HiNetConfig{
		N: 30, Theta: 5, L: 2, T: 6, Reaffiliations: 2, ChurnEdges: 0,
	}, xrand.New(11))
	rep := hinet.Probe(adv, 18)
	fmt.Println(rep)
	// Output:
	// probe over 18 rounds: (6, 2)-HiNet with ∞-interval stable head set (Remark 1 applies); n_m≈21, measured n_r=0.14
}
