package hinet

import (
	"fmt"
	"strings"

	"repro/internal/ctvg"
	"repro/internal/graph"
)

// Probe inspects a recorded or generated dynamic network and reports which
// of the paper's stability definitions it satisfies, and with what
// parameters — the diagnostic counterpart of the Model checker. Given a
// trace, it answers "what (T, L)-HiNet is this, if any?".
type ProbeReport struct {
	// Horizon is the number of rounds examined.
	Horizon int
	// MaxStableT is the largest T such that the hierarchy is T-interval
	// stable on every aligned window of the horizon (Definition 4); 0 if
	// even single rounds break structural validity.
	MaxStableT int
	// HeadSetForever reports Definition 2 with T = ∞ over the horizon.
	HeadSetForever bool
	// MinL is the smallest L such that every aligned MaxStableT-window
	// has L-hop head connectivity within its stable head subgraph
	// (Definition 7); -1 if some window lacks head connectivity entirely.
	MinL int
	// Valid reports whether every round passed structural validation.
	Valid bool
	// InvalidRound is the first structurally invalid round (when !Valid).
	InvalidRound int
	// Reaffiliations counts member cluster-change events over the
	// horizon: a node affiliated in consecutive rounds whose cluster ID
	// changed. This is the measured total behind the paper's n_m·n_r.
	Reaffiliations int
	// AvgMembers is the mean number of members per round (the paper's
	// n_m).
	AvgMembers float64
	// MeasuredNR is Reaffiliations normalised per member (the paper's
	// n_r over this horizon): Reaffiliations / AvgMembers.
	MeasuredNR float64
	// Heads is the maximum number of simultaneous cluster heads observed
	// (the θ to plug into the phase-count formulas).
	Heads int
	// BackboneBridges and BackboneCutNodes measure the fragility of the
	// first window's stable head subgraph Υ: bridges are single edges
	// whose loss partitions the heads, cut nodes are single relays whose
	// crash does. Tree backbones are maximally fragile; deployments
	// wanting crash tolerance should provision redundant gateways.
	BackboneBridges  int
	BackboneCutNodes int
}

// String renders the report in the paper's vocabulary.
func (r ProbeReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "probe over %d rounds: ", r.Horizon)
	if !r.Valid {
		fmt.Fprintf(&sb, "INVALID hierarchy at round %d", r.InvalidRound)
		return sb.String()
	}
	if r.MinL < 0 {
		fmt.Fprintf(&sb, "hierarchy %d-interval stable but cluster heads are not connected", r.MaxStableT)
		return sb.String()
	}
	fmt.Fprintf(&sb, "(%d, %d)-HiNet", r.MaxStableT, r.MinL)
	if r.HeadSetForever {
		sb.WriteString(" with ∞-interval stable head set (Remark 1 applies)")
	}
	fmt.Fprintf(&sb, "; n_m≈%.0f, measured n_r=%.2f", r.AvgMembers, r.MeasuredNR)
	return sb.String()
}

// Probe analyses rounds [0, horizon) of the network.
func Probe(d ctvg.Dynamic, horizon int) ProbeReport {
	if horizon <= 0 {
		panic("hinet: Probe needs horizon > 0")
	}
	rep := ProbeReport{Horizon: horizon, Valid: true, InvalidRound: -1, MinL: -1}

	for r := 0; r < horizon; r++ {
		if err := d.HierarchyAt(r).Validate(d.At(r)); err != nil {
			rep.Valid = false
			rep.InvalidRound = r
			return rep
		}
	}
	rep.HeadSetForever = HeadSetStable(d, 0, horizon)

	// Churn accounting: member-role cluster changes between consecutive
	// rounds, plus the average member population.
	memberRounds := 0
	for r := 0; r < horizon; r++ {
		h := d.HierarchyAt(r)
		if heads := len(h.Heads()); heads > rep.Heads {
			rep.Heads = heads
		}
		for v := 0; v < h.N(); v++ {
			if h.Role[v] == ctvg.Member {
				memberRounds++
			}
		}
		if r == 0 {
			continue
		}
		prev := d.HierarchyAt(r - 1)
		for v := 0; v < h.N(); v++ {
			if h.Role[v] != ctvg.Member {
				continue
			}
			pc, cc := prev.Cluster[v], h.Cluster[v]
			if pc != ctvg.NoCluster && cc != ctvg.NoCluster && pc != cc {
				rep.Reaffiliations++
			}
		}
	}
	rep.AvgMembers = float64(memberRounds) / float64(horizon)
	if rep.AvgMembers > 0 {
		rep.MeasuredNR = float64(rep.Reaffiliations) / rep.AvgMembers
	}

	// Largest T whose ALIGNED windows are all hierarchy-stable. Stability
	// of aligned T-windows is not monotone in T, so scan down from the
	// horizon.
	rep.MaxStableT = 1
	for T := horizon; T >= 2; T-- {
		ok := true
		for from := 0; from+T <= horizon; from += T {
			if !HierarchyStable(d, from, T) {
				ok = false
				break
			}
		}
		if ok {
			rep.MaxStableT = T
			break
		}
	}

	// Minimal L over the aligned MaxStableT windows.
	T := rep.MaxStableT
	maxLinkage := 0
	for from := 0; from+T <= horizon; from += T {
		upsilon, connected := HeadSubgraph(d, from, T)
		if !connected {
			rep.MinL = -1
			return rep
		}
		L, ok := HeadLinkage(upsilon, d.HierarchyAt(from).Heads())
		if !ok {
			rep.MinL = -1
			return rep
		}
		if L > maxLinkage {
			maxLinkage = L
		}
	}
	rep.MinL = maxLinkage

	// Fragility of the first window's Υ, restricted to relay nodes
	// (heads + gateways): member star edges are pendant by construction
	// and would drown the signal.
	upsilon, _ := HeadSubgraph(d, 0, T)
	h0 := d.HierarchyAt(0)
	backbone := graph.New(d.N())
	for _, e := range upsilon.Edges() {
		if h0.IsRelay(e.U) && h0.IsRelay(e.V) {
			backbone.AddEdge(e.U, e.V)
		}
	}
	rep.BackboneBridges = len(backbone.Bridges())
	rep.BackboneCutNodes = len(backbone.ArticulationPoints())
	return rep
}
