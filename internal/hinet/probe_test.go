package hinet

import (
	"strings"
	"testing"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/tvg"
)

func TestProbeStableTrace(t *testing.T) {
	tr := stableTrace(12)
	rep := Probe(tr, 12)
	if !rep.Valid {
		t.Fatalf("valid trace reported invalid: %v", rep)
	}
	if rep.MaxStableT != 12 {
		t.Fatalf("MaxStableT = %d, want 12 (fully stable)", rep.MaxStableT)
	}
	if rep.MinL != 2 {
		t.Fatalf("MinL = %d, want 2 (heads two hops apart)", rep.MinL)
	}
	if !rep.HeadSetForever {
		t.Fatal("head set is constant but not reported forever-stable")
	}
	if !strings.Contains(rep.String(), "(12, 2)-HiNet") {
		t.Fatalf("String: %s", rep)
	}
	if !strings.Contains(rep.String(), "Remark 1") {
		t.Fatalf("String misses Remark 1: %s", rep)
	}
}

func TestProbeDetectsPhaseBoundary(t *testing.T) {
	// Stable for rounds 0-5, membership changes at round 6, stable 6-11:
	// aligned windows of T=6 are stable; T in 7..12 are not.
	tr := stableTrace(12)
	for r := 6; r < 12; r++ {
		tr.At(r).AddEdge(0, 6)
		tr.HierarchyAt(r).SetMember(6, 0)
	}
	rep := Probe(tr, 12)
	if rep.MaxStableT != 6 {
		t.Fatalf("MaxStableT = %d, want 6", rep.MaxStableT)
	}
	if !rep.HeadSetForever {
		t.Fatal("head set unchanged; should be forever-stable")
	}
}

func TestProbeInvalidRound(t *testing.T) {
	tr := stableTrace(6)
	tr.At(3).RemoveEdge(0, 1) // member 1 loses its head adjacency
	rep := Probe(tr, 6)
	if rep.Valid || rep.InvalidRound != 3 {
		t.Fatalf("invalid round not detected: %+v", rep)
	}
	if !strings.Contains(rep.String(), "INVALID") {
		t.Fatalf("String: %s", rep)
	}
}

func TestProbeDisconnectedHeads(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	h := ctvg.NewHierarchy(4)
	h.SetHead(0)
	h.SetHead(2)
	h.SetMember(1, 0)
	h.SetMember(3, 2)
	tr := ctvg.NewTrace(tvg.NewTrace([]*graph.Graph{g}), []*ctvg.Hierarchy{h})
	rep := Probe(tr, 1)
	if rep.MinL != -1 {
		t.Fatalf("disconnected heads not flagged: %+v", rep)
	}
	if !strings.Contains(rep.String(), "not connected") {
		t.Fatalf("String: %s", rep)
	}
}

func TestProbeHeadChurn(t *testing.T) {
	tr := stableTrace(8)
	// New head in the second half.
	for r := 4; r < 8; r++ {
		tr.HierarchyAt(r).SetHead(6)
		tr.At(r).AddEdge(6, 5) // keep 6 adjacent to something (not needed for validity)
	}
	rep := Probe(tr, 8)
	if rep.HeadSetForever {
		t.Fatal("head churn missed")
	}
	if rep.MaxStableT != 4 {
		t.Fatalf("MaxStableT = %d, want 4", rep.MaxStableT)
	}
}

func TestProbeChurnAccounting(t *testing.T) {
	// Stable trace: zero re-affiliations; 3 members and 1 gateway on
	// average (gateways do not count as members).
	tr := stableTrace(6)
	rep := Probe(tr, 6)
	if rep.Reaffiliations != 0 || rep.MeasuredNR != 0 {
		t.Fatalf("stable trace shows churn: %+v", rep)
	}
	if rep.AvgMembers != 3 {
		t.Fatalf("AvgMembers = %f, want 3 (members 1, 2, 5)", rep.AvgMembers)
	}

	// Move member 5 from cluster 4 to cluster 0 at round 3: exactly one
	// re-affiliation event.
	tr2 := stableTrace(6)
	for r := 3; r < 6; r++ {
		tr2.At(r).AddEdge(0, 5)
		tr2.HierarchyAt(r).SetMember(5, 0)
	}
	rep2 := Probe(tr2, 6)
	if rep2.Reaffiliations != 1 {
		t.Fatalf("Reaffiliations = %d, want 1", rep2.Reaffiliations)
	}
	if rep2.MeasuredNR <= 0 || rep2.MeasuredNR > 1 {
		t.Fatalf("MeasuredNR = %f", rep2.MeasuredNR)
	}
}

func TestProbeBackboneFragility(t *testing.T) {
	// The two-cluster backbone 0-3-4 is a path: both edges are bridges
	// and the gateway 3 is a cut node.
	tr := stableTrace(6)
	rep := Probe(tr, 6)
	if rep.BackboneBridges < 2 {
		t.Fatalf("BackboneBridges = %d, want >= 2", rep.BackboneBridges)
	}
	if rep.BackboneCutNodes < 1 {
		t.Fatalf("BackboneCutNodes = %d, want >= 1", rep.BackboneCutNodes)
	}
}

func TestProbeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Probe(stableTrace(2), 0)
}
