// Package hinet implements the stability properties that define the paper's
// (T, L)-HiNet dynamic network model (Definitions 2–8) as executable
// predicates over a recorded or generated CTVG.
//
// Each predicate is stated on a window of rounds [from, from+T). The
// top-level model checks evaluate them on every phase window of a run, so
// theorems are only ever exercised on inputs that provably satisfy their
// hypotheses — and adversaries that claim a model are verified against it in
// tests.
package hinet

import (
	"fmt"

	"repro/internal/ctvg"
	"repro/internal/graph"
	"repro/internal/tvg"
)

// HeadSetStable implements Definition 2 (T-interval Stable Cluster Head
// Set): the head set is identical in every round of [from, from+T).
func HeadSetStable(d ctvg.Dynamic, from, T int) bool {
	mustWindow(from, T)
	base := d.HierarchyAt(from)
	for r := from + 1; r < from+T; r++ {
		if !base.SameHeadSet(d.HierarchyAt(r)) {
			return false
		}
	}
	return true
}

// ClusterStable implements Definition 3 (T-interval Stable Cluster): the
// member set of cluster k is identical in every round of [from, from+T).
func ClusterStable(d ctvg.Dynamic, k, from, T int) bool {
	mustWindow(from, T)
	base := d.HierarchyAt(from)
	for r := from + 1; r < from+T; r++ {
		if !base.SameCluster(d.HierarchyAt(r), k) {
			return false
		}
	}
	return true
}

// HierarchyStable implements Definition 4 (T-interval Stable Hierarchy):
// head set and every cluster's membership are unchanged throughout
// [from, from+T). Per the definition's tree (Fig. 2) this is exactly
// Definition 2 plus Definition 3 for every cluster; comparing the full
// hierarchies round-by-round is an equivalent and cheaper check provided
// roles are derived from membership, so we compare head sets and the
// membership function I directly.
func HierarchyStable(d ctvg.Dynamic, from, T int) bool {
	mustWindow(from, T)
	base := d.HierarchyAt(from)
	for r := from + 1; r < from+T; r++ {
		h := d.HierarchyAt(r)
		if !base.SameHeadSet(h) {
			return false
		}
		for v := 0; v < base.N(); v++ {
			if base.Cluster[v] != h.Cluster[v] {
				return false
			}
		}
	}
	return true
}

// HeadSubgraph computes the T-interval Cluster Head Subgraph Υ of
// Definition 5 for the window [from, from+T): the subgraph of the stable
// (intersection) graph induced by the connected components containing the
// round-`from` cluster heads. It returns Υ together with whether all heads
// lie in a single component of the stable graph — i.e. whether the window
// has T-interval cluster head connectivity.
func HeadSubgraph(d ctvg.Dynamic, from, T int) (upsilon *graph.Graph, connected bool) {
	mustWindow(from, T)
	stable := tvg.StableSubgraph(d, from, T)
	heads := d.HierarchyAt(from).Heads()
	if len(heads) == 0 {
		// No heads: vacuously connected, empty Υ.
		return graph.New(d.N()), true
	}
	dist, _ := stable.BFS(heads[0])
	connected = true
	for _, h := range heads[1:] {
		if dist[h] == graph.Inf {
			connected = false
			break
		}
	}
	// Υ: the stable subgraph restricted to vertices reachable from any
	// head (heads plus the gateway paths between them, plus any stable
	// hangers-on — a superset of a minimal Υ, which is all Definition 5
	// requires: Υ ⊆ G_j for all j in the window, V_Υ ⊇ V_h, connected).
	inU := make([]bool, d.N())
	for _, h := range heads {
		dh, _ := stable.BFS(h)
		for v, dv := range dh {
			if dv != graph.Inf {
				inU[v] = true
			}
		}
	}
	upsilon = graph.New(d.N())
	for _, e := range stable.Edges() {
		if inU[e.U] && inU[e.V] {
			upsilon.AddEdge(e.U, e.V)
		}
	}
	return upsilon, connected
}

// HeadConnectivity implements Definition 5 (T-interval Cluster Head
// Connectivity) on the window [from, from+T): there exists a connected
// subgraph Υ, stable over the whole window, containing every cluster head.
func HeadConnectivity(d ctvg.Dynamic, from, T int) bool {
	_, ok := HeadSubgraph(d, from, T)
	return ok
}

// HeadLinkage implements Definition 6 (L-hop Cluster Head Connectivity):
// the minimal L such that for every proper subset S of the head set and
// every head v outside S there is some u in S with distance(u, v) <= L in
// g. That minimal L is the bottleneck of the head set: the largest edge of
// a minimum spanning tree over pairwise head distances. It returns
// (L, true) when the heads are mutually reachable in g, and (0, false)
// otherwise. Fewer than two heads have linkage 0.
func HeadLinkage(g *graph.Graph, heads []int) (L int, ok bool) {
	if len(heads) < 2 {
		return 0, true
	}
	// Pairwise head distances via one BFS per head.
	k := len(heads)
	dist := make([][]int, k)
	for i, h := range heads {
		d, _ := g.BFS(h)
		dist[i] = make([]int, k)
		for j, h2 := range heads {
			dist[i][j] = d[h2]
			if d[h2] == graph.Inf && i != j {
				return 0, false
			}
		}
	}
	// Prim's algorithm on the complete head graph, tracking the largest
	// edge used (bottleneck of the minimum spanning tree).
	inTree := make([]bool, k)
	best := make([]int, k)
	for i := range best {
		best[i] = graph.Inf
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = dist[0][j]
	}
	for added := 1; added < k; added++ {
		min, at := graph.Inf, -1
		for j := 0; j < k; j++ {
			if !inTree[j] && best[j] < min {
				min, at = best[j], j
			}
		}
		if min > L {
			L = min
		}
		inTree[at] = true
		for j := 0; j < k; j++ {
			if !inTree[j] && dist[at][j] < best[j] {
				best[j] = dist[at][j]
			}
		}
	}
	return L, true
}

// LHopHeadConnectivity reports whether the head set of round `from` has
// L-hop cluster head connectivity within the window's stable head subgraph
// Υ (Definition 7 combines Definitions 5 and 6 inside Υ).
func LHopHeadConnectivity(d ctvg.Dynamic, from, T, L int) bool {
	upsilon, ok := HeadSubgraph(d, from, T)
	if !ok {
		return false
	}
	linkage, ok := HeadLinkage(upsilon, d.HierarchyAt(from).Heads())
	return ok && linkage <= L
}

// Model bundles the parameters of a (T, L)-HiNet claim.
type Model struct {
	// T is the stability interval in rounds.
	T int
	// L is the hop bound on cluster-head connectivity.
	L int
}

// CheckWindow verifies Definition 8 on a single phase window
// [from, from+T): T-interval stable hierarchy (Definition 4) plus
// T-interval L-hop cluster head connectivity (Definition 7). A nil error
// means the window satisfies the model.
func (m Model) CheckWindow(d ctvg.Dynamic, from int) error {
	if m.T <= 0 || m.L < 0 {
		return fmt.Errorf("hinet: invalid model (T=%d, L=%d)", m.T, m.L)
	}
	if !HierarchyStable(d, from, m.T) {
		return fmt.Errorf("hinet: hierarchy not %d-interval stable at round %d", m.T, from)
	}
	if !HeadConnectivity(d, from, m.T) {
		return fmt.Errorf("hinet: no %d-interval cluster head connectivity at round %d", m.T, from)
	}
	if !LHopHeadConnectivity(d, from, m.T, m.L) {
		return fmt.Errorf("hinet: cluster head connectivity exceeds %d hops at round %d", m.L, from)
	}
	return nil
}

// Check verifies Definition 8 over `phases` consecutive windows of T rounds
// starting at round 0 — the phase structure used by Algorithm 1. A nil
// error means the dynamic network is a (T, L)-HiNet for the whole run.
func (m Model) Check(d ctvg.Dynamic, phases int) error {
	for p := 0; p < phases; p++ {
		if err := m.CheckWindow(d, p*m.T); err != nil {
			return fmt.Errorf("phase %d: %w", p, err)
		}
	}
	return nil
}

// CheckValid additionally validates the per-round structural invariants of
// the hierarchy (heads self-identify, members adjacent to heads, ...) for
// every round covered by the phases.
func (m Model) CheckValid(d ctvg.Dynamic, phases int) error {
	for r := 0; r < phases*m.T; r++ {
		if err := d.HierarchyAt(r).Validate(d.At(r)); err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
	}
	return m.Check(d, phases)
}

// HeadSetStableForever reports whether the head set never changes across
// rounds [0, horizon) — the ∞-interval stable head set of Remark 1.
func HeadSetStableForever(d ctvg.Dynamic, horizon int) bool {
	return HeadSetStable(d, 0, horizon)
}

func mustWindow(from, T int) {
	if from < 0 || T <= 0 {
		panic(fmt.Sprintf("hinet: invalid window (from=%d, T=%d)", from, T))
	}
}
