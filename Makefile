GO ?= go

.PHONY: check vet fmt lint build test race fuzz bench bench10k bench100k benchstat chaos cover timing-smoke health-smoke

check: lint build test race

vet:
	$(GO) vet ./...

# fmt fails when any file needs gofmt (lists the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine, worker pool, observability layer, fault injector and
# provenance tracer are the concurrent surfaces; everything else is
# single-goroutine.
race:
	$(GO) test -race ./internal/sim/... ./internal/parallel/... ./internal/obs/... ./internal/faults/... ./internal/provenance/...

# Coverage floors for the observability surfaces — the metrics/event layer
# and the provenance tracer are pure bookkeeping, so low coverage there
# means untested accounting — and for the hierarchy maintenance layer
# (internal/cluster plus the self-stabilizing protocol underneath it),
# whose repair paths only fire under faults and so are easy to leave
# untested. The floor is a ratchet — raise it when the packages grow,
# never lower it.
COVER_FLOOR_OBS ?= 85
COVER_FLOOR_PROV ?= 85
COVER_FLOOR_CLUSTER ?= 90
cover:
	@for pkg in obs provenance cluster; do \
		case $$pkg in obs) floor=$(COVER_FLOOR_OBS);; provenance) floor=$(COVER_FLOOR_PROV);; *) floor=$(COVER_FLOOR_CLUSTER);; esac; \
		$(GO) test -coverprofile=cover.$$pkg.out ./internal/$$pkg/... >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=cover.$$pkg.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
		echo "internal/$$pkg coverage: $$pct% (floor $$floor%)"; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN {print (p >= f) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "internal/$$pkg below coverage floor"; exit 1; fi; \
	done

# Seeded randomized fault soak: hundreds of random fault plans (loss,
# bursts, duplication, crashes, recoveries, head kills) against the
# resilient protocols, plus the arrival-mode soak (TestChaosArrivals):
# random steady/bursty/hotspot/capped traffic processes layered on random
# fault plans, with token-conservation checks. Half the runs in both
# soaks swap the oracle hierarchy for the self-stabilizing clustering
# protocol (Options.SelfStabilize with randomized OrphanAfter/Watchdog),
# so the emergent-repair path soaks under the same randomized fault and
# traffic plans as the oracle path. Every run sets a stall
# watchdog, so the campaign terminates even when a plan kills the whole
# network; the -timeout is a hard backstop for the "must never hang"
# guarantee. Override CHAOS_RUNS / CHAOS_SEED to steer the campaign.
CHAOS_RUNS ?= 256
chaos:
	CHAOS_RUNS=$(CHAOS_RUNS) CHAOS_SEED=$(CHAOS_SEED) \
		$(GO) test -run 'TestChaos' -count=1 -v -timeout 10m ./internal/core/

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire

# The engine hot-path benchmarks behind BENCH_PR2.json and BENCH_PR4.json:
# a 1000-node (T, L)-HiNet run — cached, uncached, and with the provenance
# tracer attached (BenchmarkHiNet1kTraced records the tracing-on overhead;
# plain BenchmarkHiNet1k must hold the PR 2 allocation-free numbers, since
# a nil tracer takes none of the tracing paths; BenchmarkHiNet1kTimed does
# the same for the timing layer and emits per-stage <stage>-ns/op metrics).
# Everything is seeded, so runs are reproducible; -benchmem reports the
# allocation profile the arena and the stability-window cache are
# accountable for.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHiNet1k' -benchmem -count 3 .

# The 10x scaling suite behind BENCH_PR5.json: the full 10000-node pipeline
# (adversary generation, CSR trace recording, run) for Alg1 at the Theorem-1
# budget and Alg2 to completion, plus the k-scaling and delta-delivery A/B
# variants.
bench10k:
	$(GO) test -run '^$$' -bench 'BenchmarkHiNet10k' -benchmem -count 3 -timeout 2h .

# The 100k streaming suite behind BENCH_PR10.json: the adversary runs live
# through the engine (ForwardOnly delta streaming, no recorded trace), so
# the benchmark covers generation + dissemination at 100,000 nodes. The
# LongTrace variant doubles the round count to demonstrate that retained
# heap (live-MB) is independent of trace length; 10kStream is the same
# configuration at 10k, the linearity baseline.
bench100k:
	$(GO) test -run '^$$' -bench 'BenchmarkHiNet10kStream|BenchmarkHiNet100k' -benchmem -count 3 -timeout 2h .

# benchstat re-runs the 1k and 10k suites and diffs the numbers against the
# committed BENCH_*.json records via cmd/benchdiff: each record's "after"
# section is a ceiling, so a perf regression fails the target. Timing gets a
# 30% band (shared-machine noise; -count 3 keeps the best sample), the
# deterministic bytes/allocs get 5%. BENCH_PR6.json adds per-stage ceilings
# for the Timed variants, so a regression inside one engine stage fails even
# when the total hides it.
benchstat:
	$(GO) test -run '^$$' -bench 'BenchmarkHiNet1k|BenchmarkHiNet10k|BenchmarkHiNet100k' -benchmem -count 3 -timeout 2h . | tee bench.latest.out
	$(GO) run ./cmd/benchdiff -input bench.latest.out BENCH_PR2.json BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR9.json BENCH_PR10.json

# timing-smoke is CI's end-to-end determinism check for the self-profiling
# layer: the same 1k-node scenario serial and with -workers 4, both with
# normalized timing streams, must produce byte-identical JSONL (the in-repo
# unit version is TestTimingSerialParallelByteIdentical; this one goes
# through the hinetsim binary).
timing-smoke:
	$(GO) run ./cmd/hinetsim -scenario hinet -n 1000 -k 8 -seed 3 \
		-timing timing.serial.jsonl -timing-normalize > /dev/null
	$(GO) run ./cmd/hinetsim -scenario hinet -n 1000 -k 8 -seed 3 \
		-timing timing.par.jsonl -timing-normalize -workers 4 > /dev/null
	cmp timing.serial.jsonl timing.par.jsonl
	@echo "timing streams byte-identical (serial vs -workers 4)"
	@rm -f timing.serial.jsonl timing.par.jsonl

# health-smoke is CI's end-to-end check for the flight recorder: a run whose
# heads all crash at round 4 must stall, the stall SLO rule must fire, a
# postmortem bundle must land in the dump directory, and hinettrace
# postmortem must diagnose it back to the stall rule (the in-repo unit
# versions are TestStallProducesExactlyOneBundle and friends; this one goes
# through both binaries).
health-smoke:
	rm -rf health-smoke.dumps
	$(GO) run ./cmd/hinetsim -scenario hinet -n 64 -k 8 -theta 16 -seed 1 \
		-crash-heads 4 -stall-window 8 -health "stall>=8,pace" \
		-dump-dir health-smoke.dumps -record 64 > /dev/null
	ls health-smoke.dumps/hinet-r*-stall.dump
	$(GO) run ./cmd/hinettrace postmortem health-smoke.dumps/hinet-r*-stall.dump \
		| grep "first violated invariant: rule stall"
	@echo "stall anomaly dumped and diagnosed (hinetsim -> hinettrace postmortem)"
	@rm -rf health-smoke.dumps
