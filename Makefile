GO ?= go

.PHONY: check vet build test race fuzz

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine, worker pool and observability layer are the concurrent
# surfaces; everything else is single-goroutine.
race:
	$(GO) test -race ./internal/sim/... ./internal/parallel/... ./internal/obs/...

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/trace
