GO ?= go

.PHONY: check vet fmt lint build test race fuzz bench

check: lint build test race

vet:
	$(GO) vet ./...

# fmt fails when any file needs gofmt (lists the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine, worker pool and observability layer are the concurrent
# surfaces; everything else is single-goroutine.
race:
	$(GO) test -race ./internal/sim/... ./internal/parallel/... ./internal/obs/...

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire

# The engine hot-path benchmarks behind BENCH_PR2.json: a 1000-node
# (T, L)-HiNet run, cached and uncached. Everything is seeded, so runs are
# reproducible; -benchmem reports the allocation profile the arena and the
# stability-window cache are accountable for.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHiNet1k' -benchmem -count 3 .
