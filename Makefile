GO ?= go

.PHONY: check vet fmt lint build test race fuzz bench chaos

check: lint build test race

vet:
	$(GO) vet ./...

# fmt fails when any file needs gofmt (lists the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine, worker pool, observability layer and fault injector are the
# concurrent surfaces; everything else is single-goroutine.
race:
	$(GO) test -race ./internal/sim/... ./internal/parallel/... ./internal/obs/... ./internal/faults/...

# Seeded randomized fault soak: hundreds of random fault plans (loss,
# bursts, duplication, crashes, recoveries, head kills) against the
# resilient protocols. Every run sets a stall watchdog, so the campaign
# terminates even when a plan kills the whole network; the -timeout is a
# hard backstop for the "must never hang" guarantee. Override CHAOS_RUNS /
# CHAOS_SEED to steer the campaign.
CHAOS_RUNS ?= 256
chaos:
	CHAOS_RUNS=$(CHAOS_RUNS) CHAOS_SEED=$(CHAOS_SEED) \
		$(GO) test -run 'TestChaos' -count=1 -v -timeout 10m ./internal/core/

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire

# The engine hot-path benchmarks behind BENCH_PR2.json: a 1000-node
# (T, L)-HiNet run, cached and uncached. Everything is seeded, so runs are
# reproducible; -benchmem reports the allocation profile the arena and the
# stability-window cache are accountable for.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHiNet1k' -benchmem -count 3 .
