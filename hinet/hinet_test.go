package hinet_test

import (
	"fmt"
	"testing"

	"repro/hinet"
)

func TestEndToEndAlgorithm1(t *testing.T) {
	T := hinet.Theorem1T(8, 5, 2)
	cfg := hinet.HiNetConfig{
		N: 100, Theta: 30, L: 2, T: T, Reaffiliations: 3, ChurnEdges: 10,
	}
	net := hinet.NewHiNetNetwork(cfg, 42)
	phases := hinet.Theorem1Phases(30, 5)
	if err := hinet.CheckModel(net, T, 2, phases); err != nil {
		t.Fatalf("model check: %v", err)
	}
	tokens := hinet.SpreadTokens(100, 8, 43)
	res := hinet.MustRun(net, hinet.Algorithm1(T), tokens, hinet.RunOptions{
		MaxRounds:        phases * T,
		StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("incomplete: %v", res)
	}
}

func TestEndToEndAlgorithm2VsFlood(t *testing.T) {
	const n, k = 60, 6
	// Algorithm 2 on a fully dynamic clustered network.
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: n, Theta: 12, L: 2, T: 1, Reaffiliations: 3, HeadChurn: 1, ChurnEdges: 5,
	}, 7)
	tokens := hinet.SpreadTokens(n, k, 8)
	alg2 := hinet.MustRun(net, hinet.Algorithm2(), tokens, hinet.RunOptions{
		MaxRounds: hinet.Theorem2Rounds(n),
	})
	if !alg2.Complete {
		t.Fatalf("Algorithm 2 incomplete: %v", alg2)
	}

	// Flooding on an equally dynamic flat network.
	flat := hinet.NewOneIntervalNetwork(n, 0, 9)
	flood := hinet.MustRun(flat, hinet.KLOFlood(), hinet.SpreadTokens(n, k, 8), hinet.RunOptions{
		MaxRounds: hinet.Theorem2Rounds(n),
	})
	if !flood.Complete {
		t.Fatalf("flood incomplete: %v", flood)
	}
	if alg2.TokensSent >= flood.TokensSent {
		t.Fatalf("Algorithm 2 (%d tokens) not cheaper than flooding (%d tokens)",
			alg2.TokensSent, flood.TokensSent)
	}
}

func TestCheckModelRejectsWrongClaim(t *testing.T) {
	// An L=3 network must fail an L=1 model check.
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: 40, Theta: 6, L: 3, T: 10, ChurnEdges: 0,
	}, 3)
	if err := hinet.CheckModel(net, 10, 1, 2); err == nil {
		t.Fatal("L=1 claim accepted on an L=3 network")
	}
}

func TestMobilityNetworkRuns(t *testing.T) {
	net := hinet.NewMobilityNetwork(hinet.MobilityConfig{
		N: 30, Field: hinet.Field{W: 60, H: 60}, Radius: 18,
		MinSpeed: 0.5, MaxSpeed: 2, EnsureConnected: true,
	}, 11)
	tokens := hinet.SpreadTokens(30, 4, 12)
	res := hinet.MustRun(net, hinet.Algorithm2(), tokens, hinet.RunOptions{
		MaxRounds: 120, StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("incomplete on mobility: %v", res)
	}
}

func TestAnalyticCosts(t *testing.T) {
	costs := hinet.AnalyticCosts(hinet.Params{
		N0: 100, Theta: 30, NM: 40, K: 8, Alpha: 5, L: 2,
	}, 3, 10)
	if len(costs) != 4 {
		t.Fatalf("costs %v", costs)
	}
	if costs[0] != (hinet.Cost{Time: 180, Comm: 8000}) {
		t.Fatalf("KLO-T %+v", costs[0])
	}
	if costs[1] != (hinet.Cost{Time: 126, Comm: 4320}) {
		t.Fatalf("Alg1 %+v", costs[1])
	}
}

func TestTokenAssignments(t *testing.T) {
	if err := hinet.SpreadTokens(10, 5, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := hinet.SingleSourceTokens(10, 5, 3).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := hinet.RandomTokens(4, 9, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTIntervalNetwork(t *testing.T) {
	net := hinet.NewTIntervalNetwork(30, 11, 5, 2)
	tokens := hinet.SpreadTokens(30, 5, 3)
	res := hinet.MustRun(net, hinet.KLOTInterval(11), tokens, hinet.RunOptions{
		MaxRounds: 10 * 11, StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("KLOT incomplete: %v", res)
	}
}

func TestRemark1Variant(t *testing.T) {
	T := hinet.Theorem1T(6, 2, 2)
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: 50, Theta: 8, L: 2, T: T, Reaffiliations: 4, ChurnEdges: 5,
	}, 21)
	tokens := hinet.SpreadTokens(50, 6, 22)
	res := hinet.MustRun(net, hinet.Algorithm1StableHeads(T), tokens, hinet.RunOptions{
		MaxRounds: hinet.Theorem1Phases(8, 2) * T, StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("Remark 1 incomplete: %v", res)
	}
}

func TestEMDGNetworks(t *testing.T) {
	net := hinet.NewEMDGNetwork(25, 0.1, 0.2, true, 5)
	tokens := hinet.SpreadTokens(25, 4, 6)
	res := hinet.MustRun(net, hinet.KLOFlood(), tokens, hinet.RunOptions{
		MaxRounds: 24, StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("flood incomplete on patched EMDG: %v", res)
	}

	cnet := hinet.NewClusteredEMDGNetwork(25, 0.1, 0.2, 7)
	res2 := hinet.MustRun(cnet, hinet.Algorithm2(), tokens, hinet.RunOptions{
		MaxRounds: 3 * 25, StopWhenComplete: true,
	})
	if !res2.Complete {
		t.Fatalf("Algorithm 2 incomplete on clustered EMDG: %v", res2)
	}
}

func TestCodedFloodFacade(t *testing.T) {
	net := hinet.NewOneIntervalNetwork(20, 0, 3)
	tokens := hinet.SpreadTokens(20, 8, 4)
	res := hinet.MustRun(net, hinet.CodedFlood(5), tokens, hinet.RunOptions{
		MaxRounds: 150, StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("coded flood incomplete: %v", res)
	}
}

func TestMultiHopNetworkFacade(t *testing.T) {
	net, heads, err := hinet.NewMultiHopNetwork(40, 70, 2, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if heads < 1 {
		t.Fatal("no heads")
	}
	tokens := hinet.SpreadTokens(40, 5, 10)
	T := 5 + 5 + 2
	res := hinet.MustRun(net, hinet.Algorithm1(T), tokens, hinet.RunOptions{
		MaxRounds: (heads + 2) * T, StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("Algorithm 1 incomplete on multi-hop clusters: %v", res)
	}
}

func TestGossipFacade(t *testing.T) {
	net := hinet.NewOneIntervalNetwork(20, 60, 2)
	tokens := hinet.SpreadTokens(20, 3, 3)
	for _, p := range []hinet.Protocol{hinet.PushGossip(4), hinet.PushPullGossip(4)} {
		res := hinet.MustRun(net, p, tokens, hinet.RunOptions{
			MaxRounds: 600, StopWhenComplete: true,
		})
		if !res.Complete {
			t.Fatalf("%s incomplete: %v", p.Name(), res)
		}
	}
}

func TestFaultsFacade(t *testing.T) {
	net := hinet.NewOneIntervalNetwork(15, 0, 5)
	tokens := hinet.SpreadTokens(15, 3, 6)
	res := hinet.MustRun(net, hinet.KLOFlood(), tokens, hinet.RunOptions{
		MaxRounds:        400,
		StopWhenComplete: true,
		Faults:           &hinet.Faults{DropProb: 0.3, Seed: 7},
	})
	if !res.Complete {
		t.Fatalf("flood under loss incomplete: %v", res)
	}
}

func TestAdviseStableNetwork(t *testing.T) {
	const n, k = 40, 6
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: n, Theta: 6, L: 2, T: 14, Reaffiliations: 2, ChurnEdges: 4,
	}, 5)
	rep := hinet.ProbeNetwork(net, 42)
	adv := hinet.Advise(rep, n, k)
	if !adv.UseAlg1 {
		t.Fatalf("stable network not advised Alg1: probe %+v", rep)
	}
	if adv.T != 14 || adv.Alpha != (14-6)/2 {
		t.Fatalf("advice %+v", adv)
	}
	// The advice must actually work.
	res := hinet.MustRun(net, hinet.Algorithm1(adv.T), hinet.SpreadTokens(n, k, 6),
		hinet.RunOptions{MaxRounds: adv.MaxRounds, StopWhenComplete: true})
	if !res.Complete {
		t.Fatalf("advised parameters failed: advice %+v result %v", adv, res)
	}
}

func TestAdviseDynamicNetworkFallsBack(t *testing.T) {
	const n, k = 30, 6
	// T=1 dynamics: the window (1 round) cannot cover k + L.
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: n, Theta: 6, L: 2, T: 1, Reaffiliations: 3, HeadChurn: 1, Heads: 4, ChurnEdges: 3,
	}, 7)
	rep := hinet.ProbeNetwork(net, n)
	adv := hinet.Advise(rep, n, k)
	if adv.UseAlg1 {
		t.Fatalf("dynamic network advised Alg1: probe %+v", rep)
	}
	if adv.MaxRounds != n-1 {
		t.Fatalf("fallback budget %d, want n-1", adv.MaxRounds)
	}
	res := hinet.MustRun(net, hinet.Algorithm2(), hinet.SpreadTokens(n, k, 8),
		hinet.RunOptions{MaxRounds: adv.MaxRounds, StopWhenComplete: true})
	if !res.Complete {
		t.Fatalf("fallback advice failed: %v", res)
	}
}

func TestProbeNetworkFacade(t *testing.T) {
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: 30, Theta: 5, L: 2, T: 6, Reaffiliations: 2, ChurnEdges: 0,
	}, 11)
	rep := hinet.ProbeNetwork(net, 18)
	if !rep.Valid || rep.MaxStableT != 6 || rep.MinL != 2 {
		t.Fatalf("probe: %+v", rep)
	}
	if rep.Reaffiliations == 0 {
		t.Fatal("churn not measured")
	}
}

func TestDynamicDiameterFacade(t *testing.T) {
	net := hinet.NewOneIntervalNetwork(12, 0, 2)
	d := hinet.DynamicDiameter(net, 3, 11)
	if d < 1 || d > 11 {
		t.Fatalf("dynamic diameter %d outside (0, n-1]", d)
	}
	// With a budget too small to flood a 12-node spanning tree from its
	// far end, the result saturates at limit+1.
	if got := hinet.DynamicDiameter(net, 1, 2); got != 3 && got > 2 {
		// got == 3 means saturated (2+1); anything <= 2 means the flood
		// finished that fast, which a single random tree round cannot do
		// for n=12.
		t.Fatalf("saturation cap wrong: %d", got)
	}
}

// ExampleRun demonstrates the quickstart flow from the package comment.
func ExampleRun() {
	T := hinet.Theorem1T(4, 2, 2) // k=4 tokens, α=2, L=2 -> T=8
	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
		N: 30, Theta: 6, L: 2, T: T, Reaffiliations: 2, ChurnEdges: 3,
	}, 1)
	tokens := hinet.SpreadTokens(30, 4, 2)
	res := hinet.MustRun(net, hinet.Algorithm1(T), tokens, hinet.RunOptions{
		MaxRounds:        hinet.Theorem1Phases(6, 2) * T,
		StopWhenComplete: true,
	})
	fmt.Println("complete:", res.Complete)
	// Output: complete: true
}
