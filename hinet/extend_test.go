package hinet_test

import (
	"fmt"
	"testing"

	"repro/hinet"
)

// lazyFlood is a custom protocol built purely on the public API: each node
// broadcasts its full token set, but only when it learned something new in
// the previous round (plus round 0). It demonstrates the protocol-author
// surface: implement ProtocolNode + a Protocol constructor, then run and
// conformance-check it like the built-ins.
type lazyFlood struct{}

func (lazyFlood) Name() string { return "example-lazy-flood" }

func (lazyFlood) Nodes(a *hinet.Assignment) []hinet.ProtocolNode {
	nodes := make([]hinet.ProtocolNode, a.N())
	for v := range nodes {
		nodes[v] = &lazyNode{ta: a.Initial[v].Clone(), dirty: true}
	}
	return nodes
}

type lazyNode struct {
	ta    *hinet.TokenSet
	dirty bool
}

func (n *lazyNode) Send(v hinet.NodeView) *hinet.Message {
	if !n.dirty {
		return nil
	}
	n.dirty = false
	return &hinet.Message{
		To:     hinet.NoAddr,
		Kind:   hinet.KindBroadcast,
		Tokens: n.ta.Clone(),
	}
}

func (n *lazyNode) Deliver(v hinet.NodeView, msgs []*hinet.Message) {
	before := n.ta.Len()
	for _, m := range msgs {
		n.ta.UnionWith(m.Tokens)
	}
	if n.ta.Len() > before {
		n.dirty = true
	}
}

func (n *lazyNode) Tokens() *hinet.TokenSet { return n.ta }

func TestCustomProtocolThroughPublicAPI(t *testing.T) {
	const n, k = 30, 5
	// Record the network first so the conformance kit's causality check
	// sees the same snapshots as the run.
	net := hinet.RecordNetwork(hinet.NewOneIntervalNetwork(n, 2*n, 3), 3*n)
	tokens := hinet.SpreadTokens(n, k, 4)

	res := hinet.MustRun(net, lazyFlood{}, tokens, hinet.RunOptions{
		MaxRounds: 3 * n, StopWhenComplete: true,
	})
	if !res.Complete {
		t.Fatalf("lazy flood incomplete: %v", res)
	}

	if vs := hinet.CheckConformance(net, lazyFlood{}, tokens, 3*n); len(vs) != 0 {
		t.Fatalf("conformance violations: %v", vs[0])
	}

	// The point of laziness: strictly fewer messages than always-on
	// flooding over the same budget.
	eager := hinet.MustRun(net, hinet.KLOFlood(), tokens, hinet.RunOptions{MaxRounds: res.Rounds})
	if res.Messages >= eager.Messages {
		t.Fatalf("lazy (%d msgs) not below eager flooding (%d msgs)",
			res.Messages, eager.Messages)
	}
}

// ExampleCheckConformance shows the protocol-author workflow: implement a
// protocol against the public API and hold it to the safety invariants.
func ExampleCheckConformance() {
	net := hinet.RecordNetwork(hinet.NewOneIntervalNetwork(20, 40, 1), 40)
	tokens := hinet.SpreadTokens(20, 4, 2)
	violations := hinet.CheckConformance(net, lazyFlood{}, tokens, 40)
	fmt.Println("violations:", len(violations))
	// Output: violations: 0
}
