// Package hinet is the public API of the (T, L)-HiNet reproduction: a
// library for studying communication-efficient k-token dissemination in
// dynamic networks with cluster-based hierarchies (Yang, Wu, Chen, Zhang —
// "Efficient Information Dissemination in Dynamic Networks", ICPP 2013).
//
// The library bundles four layers:
//
//   - dynamic networks: generators realising the paper's dynamics models
//     (1-interval connected, T-interval connected, (T, L)-HiNet) plus a
//     mobility-driven network (random waypoint + unit-disk radio +
//     incremental clustering);
//   - protocols: the paper's hierarchical Algorithms 1 and 2 (with the
//     Remark 1 optimisation) and the flat Kuhn–Lynch–Oshman baselines;
//   - a synchronous round engine with token-level cost accounting;
//   - model checkers for the paper's Definitions 2–8 and the closed-form
//     cost model of its Tables 2 and 3.
//
// A minimal run:
//
//	net := hinet.NewHiNetNetwork(hinet.HiNetConfig{
//		N: 100, Theta: 30, L: 2, T: 18, Reaffiliations: 3, ChurnEdges: 10,
//	}, 42)
//	tokens := hinet.SpreadTokens(100, 8, 43)
//	res, err := hinet.Run(net, hinet.Algorithm1(18), tokens, hinet.RunOptions{
//		MaxRounds: 126, StopWhenComplete: true,
//	})
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res)
package hinet

import (
	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/cluster"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/ctvg"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/gossip"
	"repro/internal/graph"
	hinetmodel "repro/internal/hinet"
	"repro/internal/multihop"
	"repro/internal/netcode"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/tvg"
	"repro/internal/xrand"
)

// --- re-exported model types ---

// Role is a node's cluster status (head, gateway, member, unaffiliated).
type Role = ctvg.Role

// Role values.
const (
	Member       = ctvg.Member
	Head         = ctvg.Head
	Gateway      = ctvg.Gateway
	Unaffiliated = ctvg.Unaffiliated
)

// Hierarchy is the cluster structure of one round.
type Hierarchy = ctvg.Hierarchy

// Network is a dynamic network with per-round cluster hierarchy (the CTVG
// of the paper's Definition 1).
type Network = ctvg.Dynamic

// Protocol is a dissemination protocol runnable by the engine.
type Protocol = sim.Protocol

// The following aliases form the protocol-author surface: implement
// ProtocolNode (plus a Protocol constructor) to run your own dissemination
// strategy on every network and harness in this library, then hold it to
// CheckConformance.

// ProtocolNode is the per-node state machine interface (see sim.Node).
type ProtocolNode = sim.Node

// Message is one transmission (see sim.Message).
type Message = sim.Message

// NodeView is a node's per-round local view (see sim.View).
type NodeView = sim.View

// TokenSet is the dense token-set type protocols exchange.
type TokenSet = bitset.Set

// Message kinds and the broadcast address.
const (
	NoAddr        = sim.NoAddr
	KindBroadcast = sim.KindBroadcast
	KindUpload    = sim.KindUpload
	KindRelay     = sim.KindRelay
	KindCoded     = sim.KindCoded
)

// Assignment is an initial distribution of k tokens over n nodes.
type Assignment = token.Assignment

// Metrics is the accounting of one run: rounds, messages, token-sends,
// completion.
type Metrics = sim.Metrics

// Params carries the paper's Table 1 notation for the analytical model.
type Params = analysis.Params

// Cost is an analytical (time, communication) pair.
type Cost = analysis.Cost

// --- protocols ---

// Algorithm1 returns the paper's Algorithm 1 for (T, L)-HiNet networks
// with phase length T. Theorem 1: with T >= k + α·L it completes within
// Theorem1Phases(θ, α) phases.
func Algorithm1(T int) Protocol { return core.Alg1{T: T} }

// Algorithm1StableHeads returns the Remark 1 variant, valid when the head
// set never changes: members upload only during the first phase.
func Algorithm1StableHeads(T int) Protocol { return core.Alg1{T: T, StableHeads: true} }

// Algorithm2 returns the paper's Algorithm 2 for worst-case (1, L)-HiNet
// networks. Theorem 2: completes within n-1 rounds under 1-interval
// connectivity.
func Algorithm2() Protocol { return core.Alg2{} }

// FailoverConfig tunes the self-healing protocol variants; see
// core.Failover for the mechanism (heartbeats, head handover, flood
// fallback, upload retransmission).
type FailoverConfig = core.Failover

// Algorithm1Resilient returns the self-healing Algorithm 1 variant: the
// paper's protocol plus relay heartbeats, member-side head-failure
// detection with acting-head handover, flood fallback, and phase-boundary
// retransmission of unacknowledged uploads. window is the number of silent
// rounds after which a member declares its head dead (must be positive).
// Fault-free it transmits the same token payloads as Algorithm1.
func Algorithm1Resilient(T, window int) Protocol {
	return core.Alg1{T: T, Failover: &core.Failover{Window: window}}
}

// Algorithm2Resilient returns the self-healing Algorithm 2 variant:
// silence-based head-failure detection with acting-head handover and
// implicit-NACK re-uploads (a relay's full-set broadcast reveals the
// tokens it is missing). window as in Algorithm1Resilient.
func Algorithm2Resilient(window int) Protocol {
	return core.Alg2{Failover: &core.Failover{Window: window}}
}

// KLOFlood returns the flat 1-interval baseline (full-set flooding) of
// Kuhn–Lynch–Oshman.
func KLOFlood() Protocol { return baseline.Flood{} }

// KLOTInterval returns the flat T-interval pipelined baseline of
// Kuhn–Lynch–Oshman.
func KLOTInterval(T int) Protocol { return baseline.KLOT{T: T} }

// --- theorem helpers ---

// Theorem1T returns the Algorithm 1 phase length required by Theorem 1:
// k + α·L.
func Theorem1T(k, alpha, L int) int { return core.Theorem1T(k, alpha, L) }

// Theorem1Phases returns the Algorithm 1 phase budget of Theorem 1:
// ⌈θ/α⌉ + 1.
func Theorem1Phases(theta, alpha int) int { return core.Theorem1Phases(theta, alpha) }

// Theorem2Rounds returns Algorithm 2's always-sufficient budget: n - 1.
func Theorem2Rounds(n int) int { return core.Theorem2Rounds(n) }

// --- networks ---

// HiNetConfig configures the scripted (T, L)-HiNet network generator; see
// the field documentation on adversary.HiNetConfig.
type HiNetConfig = adversary.HiNetConfig

// NewHiNetNetwork returns a dynamic network satisfying the (T, L)-HiNet
// model on aligned phase windows, driven by the given seed.
func NewHiNetNetwork(cfg HiNetConfig, seed uint64) Network {
	return adversary.NewHiNet(cfg, xrand.New(seed))
}

// NewOneIntervalNetwork returns a flat dynamic network that is 1-interval
// connected: an independent random connected graph (m edges; 0 means a
// bare spanning tree) every round.
func NewOneIntervalNetwork(n, m int, seed uint64) Network {
	return sim.NewFlat(adversary.NewOneInterval(n, m, xrand.New(seed)))
}

// NewTIntervalNetwork returns a flat dynamic network that is T-interval
// connected on aligned windows, with `churn` extra random edges per round.
func NewTIntervalNetwork(n, T, churn int, seed uint64) Network {
	return sim.NewFlat(adversary.NewTInterval(n, T, churn, xrand.New(seed)))
}

// MobilityConfig configures the physically-driven network; see
// adversary.MobilityConfig.
type MobilityConfig = adversary.MobilityConfig

// Field is a rectangular deployment area.
type Field = geom.Field

// ClusterConfig configures head election and gateway selection.
type ClusterConfig = cluster.Config

// NewMobilityNetwork returns a random-waypoint/unit-disk network with
// incrementally maintained clustering.
func NewMobilityNetwork(cfg MobilityConfig, seed uint64) Network {
	return adversary.NewMobility(cfg, xrand.New(seed))
}

// --- token assignments ---

// SpreadTokens assigns k tokens to k distinct random nodes (one each).
func SpreadTokens(n, k int, seed uint64) *Assignment {
	return token.Spread(n, k, xrand.New(seed))
}

// SingleSourceTokens assigns all k tokens to node src.
func SingleSourceTokens(n, k, src int) *Assignment {
	return token.SingleSource(n, k, src)
}

// RandomTokens assigns each token to an independently chosen random owner.
func RandomTokens(n, k int, seed uint64) *Assignment {
	return token.Random(n, k, xrand.New(seed))
}

// --- running ---

// Faults declares the failures injected into a run: message loss (i.i.d.
// or Gilbert–Elliott bursty), duplication, crash-stop, crash-recovery and
// head-targeted kills; see sim.Faults / the faults package for the model.
type Faults = sim.Faults

// BurstLoss parameterises Gilbert–Elliott bursty link loss (the
// Faults.Burst field); see faults.GilbertElliott.
type BurstLoss = faults.GilbertElliott

// StallReport is the stall watchdog's diagnostic; see sim.StallReport.
type StallReport = sim.StallReport

// RunOptions controls a run.
type RunOptions struct {
	// MaxRounds bounds the execution (required).
	MaxRounds int
	// StopWhenComplete ends the run as soon as every node holds all k
	// tokens.
	StopWhenComplete bool
	// Faults, if non-nil, injects failures (the paper assumes reliable
	// links and live nodes; this knob measures degradation beyond that
	// assumption). An invalid plan is a Run error.
	Faults *Faults
	// Workers enables within-round parallelism (0 or 1 = serial). Results
	// are bit-identical to serial runs, fault injection included.
	Workers int
	// StallWindow, when positive, arms the engine's stall watchdog: a run
	// making no token progress for StallWindow consecutive rounds is
	// terminated with a diagnostic in Metrics.Stall instead of spinning to
	// MaxRounds. 0 disables it.
	StallWindow int
}

// Run executes the protocol on the network and returns the metrics. It
// fails before the first round on an invalid configuration (bad fault
// plan, non-positive MaxRounds).
func Run(net Network, p Protocol, tokens *Assignment, opts RunOptions) (*Metrics, error) {
	return sim.RunProtocol(net, p, tokens, sim.Options{
		MaxRounds:        opts.MaxRounds,
		StopWhenComplete: opts.StopWhenComplete,
		Faults:           opts.Faults,
		Workers:          opts.Workers,
		StallWindow:      opts.StallWindow,
	})
}

// MustRun is Run for call sites where a failure is a programming error: it
// panics instead of returning one.
func MustRun(net Network, p Protocol, tokens *Assignment, opts RunOptions) *Metrics {
	m, err := Run(net, p, tokens, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// PushGossip returns uniform push gossip (Kempe et al.) — the classic
// probabilistic comparator from the paper's related work.
func PushGossip(seed uint64) Protocol { return gossip.Push{Seed: seed} }

// PushPullGossip returns push gossip with reply-to-pusher behaviour.
func PushPullGossip(seed uint64) Protocol { return gossip.PushPull{Seed: seed} }

// --- extension models (paper's future-work directions and comparators) ---

// NewEMDGNetwork returns a flat edge-Markovian dynamic network (Clementi
// et al.): each potential edge is born with probability p and dies with
// probability q per round. With patch set, every snapshot is patched to
// connectivity with bridge edges.
func NewEMDGNetwork(n int, p, q float64, patch bool, seed uint64) Network {
	return sim.NewFlat(adversary.NewEMDG(n, p, q, patch, xrand.New(seed)))
}

// NewClusteredEMDGNetwork returns the paper's proposed future-work model:
// an edge-Markovian topology with an incrementally maintained cluster
// hierarchy on top.
func NewClusteredEMDGNetwork(n int, p, q float64, seed uint64) Network {
	return adversary.NewClusteredEMDG(n, p, q, cluster.Config{}, xrand.New(seed))
}

// CodedFlood returns the Haeupler–Karger network-coded dissemination
// protocol (random GF(2) combinations, one token-equivalent per packet) —
// the speed-oriented comparator the paper cites as [8].
func CodedFlood(seed uint64) Protocol { return netcode.CodedFlood{Seed: seed} }

// NewMultiHopNetwork builds a random connected topology of n nodes and m
// edges, clusters it with radius d (members up to d hops from their head —
// the paper's future-work extension), and wraps it as a network with
// `churn` random extra edges per round. It returns the network and the
// number of elected heads.
func NewMultiHopNetwork(n, m, d, churn int, seed uint64) (Network, int, error) {
	rng := xrand.New(seed)
	g := graph.RandomConnected(n, m, rng)
	nw, h, err := multihop.NewNetwork(g, d, 0, churn, rng)
	if err != nil {
		return nil, 0, err
	}
	return nw, len(h.Heads), nil
}

// DynamicDiameter computes the Kuhn–Oshman dynamic diameter of the
// network over start rounds [0, starts), giving each causal flood a budget
// of `limit` rounds; it returns limit+1 if some flood cannot finish.
func DynamicDiameter(net Network, starts, limit int) int {
	d := tvg.DynamicDiameter(net, starts, limit)
	if d == tvg.Inf {
		return limit + 1
	}
	return d
}

// --- model checking and analysis ---

// ProbeReport describes the stability model a network was observed to
// satisfy; see the field docs on the internal type.
type ProbeReport = hinetmodel.ProbeReport

// ProbeNetwork inspects rounds [0, horizon) of a network and infers its
// stability parameters: the largest stable T, the minimal L, head-set
// permanence, measured re-affiliation rate (the paper's n_r), and the
// backbone's fragility (bridge edges, cut relays).
func ProbeNetwork(net Network, horizon int) ProbeReport {
	return hinetmodel.Probe(net, horizon)
}

// Advice is a protocol-parameter recommendation derived from a probe.
type Advice struct {
	// UseAlg1 reports whether the network is stable enough for the
	// phase-based Algorithm 1; when false, fall back to Algorithm 2 with
	// Theorem2Rounds(n) as the budget.
	UseAlg1 bool
	// T is the phase length to pass to Algorithm1 (the network's full
	// observed stability window).
	T int
	// Alpha is the per-phase progress coefficient the window affords:
	// (T − k) / L.
	Alpha int
	// MaxRounds is the run budget: Theorem1Phases(heads, α)·T for
	// Algorithm 1, or n−1 for the Algorithm 2 fallback.
	MaxRounds int
}

// Advise turns a probe report into Algorithm 1 parameters for
// disseminating k tokens on the probed network. Algorithm 1 is feasible
// when the observed stability window covers k + L rounds (α >= 1); the
// advice then uses the full window as T (maximising per-phase progress)
// and the Theorem 1 phase budget with the observed head count as θ. If
// the window is too short — highly dynamic networks — the advice is
// Algorithm 2 with the Theorem 2 budget.
func Advise(rep ProbeReport, n, k int) Advice {
	if rep.Valid && rep.MinL >= 1 && rep.MaxStableT >= k+rep.MinL {
		alpha := (rep.MaxStableT - k) / rep.MinL
		heads := rep.Heads
		if heads < 1 {
			heads = 1
		}
		return Advice{
			UseAlg1:   true,
			T:         rep.MaxStableT,
			Alpha:     alpha,
			MaxRounds: Theorem1Phases(heads, alpha) * rep.MaxStableT,
		}
	}
	return Advice{MaxRounds: Theorem2Rounds(n)}
}

// CheckModel verifies that the network satisfies the (T, L)-HiNet model
// (Definition 8) over `phases` aligned windows of T rounds, including the
// per-round structural invariants. A nil error means every theorem
// hypothesis of Algorithm 1 holds on this input.
func CheckModel(net Network, T, L, phases int) error {
	return hinetmodel.Model{T: T, L: L}.CheckValid(net, phases)
}

// ConformanceViolation is one invariant breach found by CheckConformance.
type ConformanceViolation = conformance.Violation

// CheckConformance runs a protocol on a recorded network and verifies the
// model-independent safety invariants every correct dissemination protocol
// must satisfy: causal information flow, token-set monotonicity, domain
// safety, and determinism. An empty result means conformant. Use it on
// your own Protocol implementations; every protocol shipped in this
// library passes it.
func CheckConformance(net Network, p Protocol, tokens *Assignment, rounds int) []ConformanceViolation {
	return conformance.Check(net, p, tokens, rounds)
}

// RecordNetwork freezes rounds [0, rounds) of a network into a replayable
// trace (required by CheckConformance when the network is generated
// lazily).
func RecordNetwork(net Network, rounds int) Network {
	return ctvg.Record(net, rounds)
}

// AnalyticCosts evaluates the paper's Table 2 closed forms at the given
// parameters, returning the four rows' costs in paper order: KLO
// T-interval, Algorithm 1, KLO 1-interval flooding, Algorithm 2. nrT and
// nr1 are the per-row re-affiliation counts.
func AnalyticCosts(p Params, nrT, nr1 int) []Cost {
	rows := analysis.Table2(p, nrT, nr1)
	out := make([]Cost, len(rows))
	for i, r := range rows {
		out[i] = r.Cost
	}
	return out
}
